// Planner differential fuzz harness + targeted planner behavior tests.
//
// The fuzz loop samples random fabrics (node counts biased small, uneven
// GPU mixes, fat-tree oversubscription and pod tilings), message sizes
// across the latency->bandwidth range (with ragged tails), densities, and
// membership orders, then pins the planner's three contracts per sample:
//
//   never lose  — the winning plan's predicted clock <= the flat ring's,
//                 with the ring clock independently recomputed through
//                 ring_allreduce (so the planner's baseline candidate is
//                 held record-equivalent to the real ring, not just to its
//                 own idea of one);
//   honest cost — execute() on a fresh cluster finishes at exactly the
//                 predicted clock (the executed schedule is
//                 record-for-record the scored one);
//   correct data — exact plans leave every rank bitwise identical to the
//                 flat-ring oracle.  Inputs are integer-valued in [-512,
//                 512] with worlds <= ~128 ranks, so every partial sum is an
//                 exactly-representable integer and float addition is
//                 associative — any exact All-Reduce must match bitwise, no
//                 tolerance.  Approximate (gTop-k) plans instead must leave
//                 all ranks holding the *same* buffer.
//
// Reproducibility: every sample logs its seed and shape via SCOPED_TRACE;
// HITOPK_PLANNER_FUZZ_SEED / HITOPK_PLANNER_FUZZ_SAMPLES override the
// defaults (CI runs the suite under ASan/UBSan and TSan with the seed
// printed on failure — see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "collectives/planner.h"
#include "collectives/ring.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value ? std::strtoull(value, nullptr, 10) : fallback;
}

// ------------------------------------------------------------ fuzz inputs

struct Sample {
  Topology topo;
  Group group;
  size_t elems;
  double density;
  std::string describe;
};

Sample random_sample(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  // Node count 1..64, biased small (the expensive worlds stay rare so the
  // suite holds many samples); big worlds cap GPUs to bound rank counts.
  const int nodes =
      1 + static_cast<int>(std::floor(63.0 * std::pow(unif(rng), 2.5)));
  const int max_gpus = nodes > 16 ? 2 : 6;
  std::uniform_int_distribution<int> gpu_dist(1, max_gpus);
  std::vector<int> gpus;
  if (unif(rng) < 0.4) {  // uneven fleet
    for (int i = 0; i < nodes; ++i) gpus.push_back(gpu_dist(rng));
  } else {
    gpus.assign(static_cast<size_t>(nodes), gpu_dist(rng));
  }

  const LinkParams intra{1e-6, 1e-9};
  // Inter-node latency log-uniform across 1us..100us: both the
  // latency-bound and the bandwidth-bound regime appear.
  const LinkParams inter{1e-6 * std::pow(10.0, 2.0 * unif(rng)), 1e-8};
  std::uniform_int_distribution<int> flows(1, 4);
  const double nic_beta = inter.beta / flows(rng);
  const double oversubscription = unif(rng) < 0.5 ? 1.0 : 1.0 + 7.0 * unif(rng);
  int nodes_per_pod = 0;
  if (nodes >= 2 && unif(rng) < 0.5) {
    nodes_per_pod = std::uniform_int_distribution<int>(1, nodes - 1)(rng);
  }

  Topology topo(gpus, intra, inter, nic_beta, oversubscription, nodes_per_pod);

  std::uniform_int_distribution<int> log_elems(6, 13);
  std::uniform_int_distribution<size_t> ragged(0, 3);
  const size_t elems = (size_t{1} << log_elems(rng)) + ragged(rng);

  const double densities[] = {1.0, 1.0, 1.0, 0.01, 0.001};
  const double density =
      densities[std::uniform_int_distribution<int>(0, 4)(rng)];

  Group group = world_group(topo);
  std::string membership = "world";
  if (group.size() > 1 && unif(rng) < 0.2) {  // elastic survivor subset
    std::shuffle(group.begin(), group.end(), rng);
    const size_t keep = std::uniform_int_distribution<size_t>(
        1, group.size())(rng);
    group.resize(keep);
    membership = "subset(" + std::to_string(keep) + ")";
  } else if (group.size() > 1 && unif(rng) < 0.25) {  // shuffled placement
    std::shuffle(group.begin(), group.end(), rng);
    membership = "shuffled";
  }

  std::string describe = topo.describe() + " elems=" + std::to_string(elems) +
                         " density=" + std::to_string(density) +
                         " group=" + membership;
  return {std::move(topo), std::move(group), elems, density,
          std::move(describe)};
}

// Integer-valued buffers: every partial sum across <= ~128 ranks of values
// in [-512, 512] is an integer below 2^24, so float addition is exact and
// bitwise comparison across algorithms with different add orders is fair.
std::vector<Tensor> integer_buffers(size_t count, size_t elems,
                                    std::mt19937_64& rng) {
  std::uniform_int_distribution<int> values(-512, 512);
  std::vector<Tensor> buffers;
  for (size_t r = 0; r < count; ++r) {
    Tensor t(elems);
    for (float& x : t.span()) x = static_cast<float>(values(rng));
    buffers.push_back(std::move(t));
  }
  return buffers;
}

RankData spans_of(std::vector<Tensor>& buffers) {
  RankData spans;
  for (auto& b : buffers) spans.push_back(b.span());
  return spans;
}

// ------------------------------------------------------------- fuzz loop

TEST(PlannerFuzz, DifferentialAgainstFlatRingOracle) {
  const uint64_t seed = env_u64("HITOPK_PLANNER_FUZZ_SEED", 20260807);
  const uint64_t samples = env_u64("HITOPK_PLANNER_FUZZ_SAMPLES", 200);
  std::mt19937_64 rng(seed);
  Planner planner;

  for (uint64_t i = 0; i < samples; ++i) {
    const Sample s = random_sample(rng);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " sample=" +
                 std::to_string(i) + " " + s.describe);

    const PlanChoice choice =
        planner.plan_group(s.topo, s.group, s.elems, s.density);

    // Never lose: the winner's clock is bounded by the flat ring's, and
    // the planner's ring baseline is the real ring_allreduce clock.
    EXPECT_LE(choice.predicted_seconds, choice.flat_ring_seconds);
    if (s.group.size() > 1) {
      Cluster ring_cluster(s.topo);
      const double ring_t =
          ring_allreduce(ring_cluster, s.group, {}, s.elems, WireDtype::kFp32, 0.0);
      EXPECT_DOUBLE_EQ(choice.flat_ring_seconds, ring_t);
    }

    // Honest cost + correct data.
    std::vector<Tensor> planned = integer_buffers(s.group.size(), s.elems, rng);
    std::vector<Tensor> oracle = planned;
    Cluster exec_cluster(s.topo);
    const double finish = planner.execute(exec_cluster, s.group,
                                          spans_of(planned), s.elems,
                                          s.density, 0.0);
    EXPECT_DOUBLE_EQ(finish, choice.predicted_seconds)
        << "executed finish diverges from the scored clock for plan "
        << choice.name;

    if (choice.exact_sum) {
      Cluster oracle_cluster(s.topo);
      ring_allreduce(oracle_cluster, s.group, spans_of(oracle), s.elems, WireDtype::kFp32, 0.0);
      for (size_t r = 0; r < s.group.size(); ++r) {
        ASSERT_EQ(std::memcmp(planned[r].data(), oracle[r].data(),
                              s.elems * sizeof(float)),
                  0)
            << "plan " << choice.name << " diverges from the ring oracle at "
            << "group position " << r;
      }
    } else {
      // Approximate plans must still agree across ranks.
      for (size_t r = 1; r < s.group.size(); ++r) {
        ASSERT_EQ(std::memcmp(planned[r].data(), planned[0].data(),
                              s.elems * sizeof(float)),
                  0)
            << "approximate plan " << choice.name
            << " leaves ranks disagreeing at group position " << r;
      }
    }
  }
}

// ------------------------------------------------------- targeted checks

Topology latency_fabric(int nodes, int gpus) {
  // 25us inter-node latency, fast wires: the regime where round count
  // dominates and halving-doubling's 2*log2(P) beats the ring's 2(P-1).
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9},
                  LinkParams{25e-6, 1e-9});
}

TEST(Planner, HalvingDoublingWinsSmallMessages) {
  Planner planner;
  const Topology topo = latency_fabric(4, 4);
  const PlanChoice choice = planner.plan(topo, /*elems=*/64);
  EXPECT_EQ(choice.algorithm, PlanAlgorithm::kHalvingDoubling) << choice.name;
  EXPECT_LT(choice.predicted_seconds, choice.flat_ring_seconds);
}

TEST(Planner, SparseDensityPicksGtopk) {
  Planner planner;
  const Topology topo = Topology::tencent_cloud(4, 2);
  const PlanChoice choice = planner.plan(topo, /*elems=*/1 << 20, 0.001);
  EXPECT_EQ(choice.algorithm, PlanAlgorithm::kGtopk) << choice.name;
  EXPECT_FALSE(choice.exact_sum);
  EXPECT_LT(choice.predicted_seconds, choice.flat_ring_seconds);
}

TEST(Planner, DensePlansNeverConsiderGtopk) {
  Planner planner;
  const Topology topo = Topology::tencent_cloud(4, 2);
  const PlanChoice choice = planner.plan(topo, 1 << 20, 1.0);
  EXPECT_TRUE(choice.exact_sum);
}

TEST(Planner, OversubscribedFatTreeBeatsFlatRing) {
  // 8 pods of 2 nodes behind 4:1-oversubscribed uplinks: the flat
  // world-scale ring hammers the core, the hierarchy-aligned plans don't.
  Planner planner;
  const Topology topo(16, 4, LinkParams{1e-6, 1e-9}, LinkParams{25e-6, 1e-8},
                      /*nic_beta=*/0.25e-8, /*oversubscription=*/4.0,
                      /*nodes_per_pod=*/2);
  const PlanChoice choice = planner.plan(topo, 1 << 20);
  EXPECT_LT(choice.predicted_seconds, choice.flat_ring_seconds);
  EXPECT_NE(choice.algorithm, PlanAlgorithm::kFlatRing) << choice.name;
}

TEST(Planner, CacheHitReusesWinnerAndStillNeverLoses) {
  Planner planner;
  const Topology topo = Topology::tencent_cloud(4, 2);
  const PlanChoice first = planner.plan(topo, 1 << 12);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(planner.cache_hits(), 0u);
  EXPECT_EQ(planner.cache_size(), 1u);

  const PlanChoice second = planner.plan(topo, 1 << 12);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(planner.cache_hits(), 1u);
  EXPECT_EQ(second.name, first.name);
  EXPECT_DOUBLE_EQ(second.predicted_seconds, first.predicted_seconds);

  // A different size in the same power-of-two bucket re-scores the cached
  // winner at *that* size and keeps the never-lose bound there too.
  const PlanChoice sibling = planner.plan(topo, (1 << 12) + 100);
  EXPECT_TRUE(sibling.cache_hit);
  EXPECT_LE(sibling.predicted_seconds, sibling.flat_ring_seconds);

  // A different octave is a different bucket.
  const PlanChoice other = planner.plan(topo, 1 << 20);
  EXPECT_FALSE(other.cache_hit);
  EXPECT_EQ(planner.cache_size(), 2u);
}

TEST(Planner, ShuffledGroupPrefersPodSortedMembership) {
  // A deliberately pod-hostile membership order on an oversubscribed
  // two-pod fabric: the locality-sorted ring crosses the core twice, the
  // given order crosses it every hop.
  Planner planner;
  const Topology topo(8, 2, LinkParams{1e-6, 1e-9}, LinkParams{25e-6, 1e-8},
                      /*nic_beta=*/0.5e-8, /*oversubscription=*/8.0,
                      /*nodes_per_pod=*/4);
  Group group = world_group(topo);
  // Interleave the pods: ranks of pod 0 and pod 1 alternate.
  Group interleaved;
  for (int i = 0; i < 8; ++i) {
    interleaved.push_back(group[static_cast<size_t>(i)]);
    interleaved.push_back(group[static_cast<size_t>(i + 8)]);
  }
  const PlanChoice choice = planner.plan_group(topo, interleaved, 1 << 18);
  EXPECT_LT(choice.predicted_seconds, choice.flat_ring_seconds);
  const Group sorted = locality_sorted_group(topo, interleaved);
  EXPECT_EQ(choice.ring_order, sorted) << choice.name;
}

TEST(Planner, SingleRankGroupIsTrivial) {
  Planner planner;
  const Topology topo = Topology::tencent_cloud(2, 2);
  const PlanChoice choice = planner.plan_group(topo, {2}, 1 << 10);
  EXPECT_EQ(choice.predicted_seconds, 0.0);
  Cluster cluster(topo);
  Tensor t(8);
  t.span()[0] = 3.0f;
  EXPECT_EQ(planner.execute(cluster, {2}, {t.span()}, 8, 1.0, 1.5), 1.5);
  EXPECT_EQ(t.span()[0], 3.0f);
}

TEST(Planner, RejectsBadInputs) {
  Planner planner;
  const Topology topo = Topology::tencent_cloud(2, 2);
  EXPECT_THROW(planner.plan(topo, 1024, 0.0), ConfigError);
  EXPECT_THROW(planner.plan(topo, 1024, 1.5), ConfigError);
  EXPECT_THROW(planner.plan_group(topo, {0, 99}, 1024), ConfigError);
}

}  // namespace
}  // namespace hitopk::coll
