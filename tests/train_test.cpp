// Tests for the training system: tensor fusion, the iteration timeline
// (Fig. 1 / Table 3 shapes), and the DAWNBench schedule (Tables 4-5).
#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "train/dawnbench.h"
#include "train/fusion.h"
#include "train/timeline.h"

namespace hitopk::train {
namespace {

using simnet::Topology;

// ------------------------------------------------------------ fusion
TEST(Fusion, SingleTensorBelowThresholdIsOneBucket) {
  const auto buckets = fuse_buckets({100}, 1 << 20);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].elems, 100u);
  EXPECT_DOUBLE_EQ(buckets[0].ready_fraction, 1.0);
}

TEST(Fusion, SplitsAtThreshold) {
  // 4-byte elements; threshold 40 bytes = 10 elements.
  const auto buckets = fuse_buckets({6, 6, 6, 6}, 40);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].elems, 12u);
  EXPECT_EQ(buckets[1].elems, 12u);
  EXPECT_DOUBLE_EQ(buckets[0].ready_fraction, 0.5);
  EXPECT_DOUBLE_EQ(buckets[1].ready_fraction, 1.0);
}

TEST(Fusion, ElementsAndLayersConserved) {
  const models::ModelSpec model = models::resnet50();
  const auto sizes = model.backprop_order_sizes();
  const auto buckets = fuse_buckets(sizes, 64 << 20);
  size_t elems = 0, layers = 0;
  for (const auto& b : buckets) {
    elems += b.elems;
    layers += b.layers;
  }
  EXPECT_EQ(elems, model.total_params());
  EXPECT_EQ(layers, model.num_tensors());
}

TEST(Fusion, ReadyFractionsMonotonic) {
  const auto sizes = models::vgg19().backprop_order_sizes();
  const auto buckets = fuse_buckets(sizes, 8 << 20);
  EXPECT_GT(buckets.size(), 2u);
  double prev = 0.0;
  for (const auto& b : buckets) {
    EXPECT_GT(b.ready_fraction, prev);
    prev = b.ready_fraction;
  }
  EXPECT_DOUBLE_EQ(buckets.back().ready_fraction, 1.0);
}

TEST(Fusion, LargeTensorGetsOwnBucket) {
  // VGG's fc1 (102.8M elems = 411 MB) exceeds any normal threshold alone.
  const auto buckets = fuse_buckets(models::vgg19().backprop_order_sizes(),
                                    64 << 20);
  bool found = false;
  for (const auto& b : buckets) {
    if (b.elems >= 25088u * 4096u) found = true;
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------ timeline
TrainerOptions base_options(Algorithm algorithm, const char* model = "resnet50",
                            int resolution = 224, int batch = 256) {
  TrainerOptions options;
  options.model = model;
  options.resolution = resolution;
  options.local_batch = batch;
  options.algorithm = algorithm;
  return options;
}

TEST(Timeline, BreakdownSumsToTotal) {
  TrainingSimulator sim(Topology::tencent_cloud(16, 8),
                        base_options(Algorithm::kMstopkHitopk));
  const auto it = sim.simulate_iteration();
  EXPECT_NEAR(it.io + it.ffbp + it.compression + it.communication + it.lars +
                  it.overhead,
              it.total, 1e-9);
  EXPECT_GT(it.throughput, 0.0);
}

TEST(Timeline, Table3AlgorithmOrdering) {
  // Dense-SGD slowest everywhere.  MSTopK-SGD vs 2DTAR-SGD: near-tie at
  // ResNet@224 (the paper has 2DTAR ahead by 1%; we tolerate +-8%), a clear
  // win on ResNet@96 and VGG-19, and at least a small win on Transformer
  // (our simulated 2DTAR Transformer overlaps better than the paper's
  // measured one, so the 1.38x gap narrows; see EXPERIMENTS.md).
  const Topology topo = Topology::tencent_cloud(16, 8);
  struct Case {
    const char* model;
    int res;
    int batch;
    double min_ratio;  // MSTopK / 2DTAR throughput
    double max_ratio;
  };
  for (const Case c : {Case{"resnet50", 224, 256, 0.92, 1.08},
                       Case{"resnet50", 96, 256, 1.05, 1.5},
                       Case{"vgg19", 224, 128, 1.10, 1.9},
                       Case{"transformer", 224, 16, 1.02, 1.6}}) {
    TrainingSimulator dense(topo, base_options(Algorithm::kDenseTree, c.model,
                                               c.res, c.batch));
    TrainingSimulator torus(topo, base_options(Algorithm::kDense2dTorus,
                                               c.model, c.res, c.batch));
    TrainingSimulator mstopk(topo, base_options(Algorithm::kMstopkHitopk,
                                                c.model, c.res, c.batch));
    const double td = dense.simulate_iteration().throughput;
    const double tt = torus.simulate_iteration().throughput;
    const double tm = mstopk.simulate_iteration().throughput;
    EXPECT_LT(td, tt) << c.model << c.res;
    EXPECT_LT(td, tm) << c.model << c.res;
    EXPECT_GT(tm / tt, c.min_ratio) << c.model << c.res;
    EXPECT_LT(tm / tt, c.max_ratio) << c.model << c.res;
  }
}

TEST(Timeline, TopkCompressionExposedLikeFig1) {
  // Fig. 1: TopK-SGD's exact top-k compression is a large non-overlapped
  // chunk, comparable to FF&BP itself at 224^2.
  TrainingSimulator sim(Topology::tencent_cloud(16, 8),
                        base_options(Algorithm::kTopkNaiveAg));
  const auto it = sim.simulate_iteration();
  EXPECT_GT(it.compression, 0.1);
  EXPECT_LT(it.compression, 0.35);
}

TEST(Timeline, UnevenClusterSimulates) {
  // Regression: raw_io_seconds() sized the node fetch with the uniform-only
  // gpus_per_node() and aborted on heterogeneous fleets; the busiest node
  // now bounds the IO wait instead.
  const Topology topo(std::vector<int>{8, 8, 4, 4},
                      simnet::LinkParams{1e-6, 1e-9},
                      simnet::LinkParams{25e-6, 1e-8});
  TrainingSimulator sim(topo, base_options(Algorithm::kTopkNaiveAg));
  const auto it = sim.simulate_iteration();
  EXPECT_GT(it.throughput, 0.0);
  EXPECT_NEAR(it.io + it.ffbp + it.compression + it.communication + it.lars +
                  it.overhead,
              it.total, 1e-9);
}

TEST(Timeline, DenseCommunicationDominatesAtLowResolution) {
  // Fig. 1 / §2.2: at 96^2 the compute shrinks but communication does not.
  TrainingSimulator sim(Topology::tencent_cloud(16, 8),
                        base_options(Algorithm::kDenseTree, "resnet50", 96));
  const auto it = sim.simulate_iteration();
  EXPECT_GT(it.communication, it.ffbp);
}

TEST(Timeline, ScalingEfficiencyInUnitRange) {
  for (Algorithm a : {Algorithm::kDenseTree, Algorithm::kDense2dTorus,
                      Algorithm::kTopkNaiveAg, Algorithm::kMstopkHitopk}) {
    TrainingSimulator sim(Topology::tencent_cloud(16, 8), base_options(a));
    const double se = sim.scaling_efficiency();
    EXPECT_GT(se, 0.0) << algorithm_name(a);
    EXPECT_LT(se, 1.0) << algorithm_name(a);
  }
}

TEST(Timeline, MstopkScalingEfficiencyNearPaperAt96) {
  // Table 3: MSTopK-SGD at 96^2 reaches ~70% SE (ours computes SE against
  // its own single-GPU baseline; allow a generous band).
  TrainingSimulator sim(Topology::tencent_cloud(16, 8),
                        base_options(Algorithm::kMstopkHitopk, "resnet50", 96));
  const double se = sim.scaling_efficiency();
  EXPECT_GT(se, 0.6);
  EXPECT_LT(se, 0.95);
}

TEST(Timeline, FasterInterconnectHelpsDense) {
  TrainingSimulator eth(Topology::tencent_cloud(16, 8),
                        base_options(Algorithm::kDenseTree));
  TrainingSimulator ib(Topology::infiniband_100g(16, 8),
                       base_options(Algorithm::kDenseTree));
  EXPECT_GT(ib.simulate_iteration().throughput,
            1.3 * eth.simulate_iteration().throughput);
}

TEST(Timeline, OverlapReducesExposedCommunication) {
  TrainerOptions overlapped = base_options(Algorithm::kDense2dTorus);
  TrainerOptions serial = overlapped;
  serial.overlap_comm = false;
  const Topology topo = Topology::tencent_cloud(16, 8);
  TrainingSimulator a(topo, overlapped), b(topo, serial);
  EXPECT_LE(a.simulate_iteration().communication,
            b.simulate_iteration().communication);
}

TEST(Timeline, DataCacheRemovesExposedIo) {
  TrainerOptions cached = base_options(Algorithm::kMstopkHitopk, "resnet50", 96);
  TrainerOptions naive = cached;
  naive.use_datacache = false;
  const Topology topo = Topology::tencent_cloud(16, 8);
  TrainingSimulator a(topo, cached), b(topo, naive);
  EXPECT_LT(a.simulate_iteration().io + 1e-9,
            b.simulate_iteration().io + 1e-9);
}

TEST(Timeline, SingleGpuHasNoCommunication) {
  TrainingSimulator sim(Topology::tencent_cloud(16, 8),
                        base_options(Algorithm::kMstopkHitopk));
  const auto it = sim.simulate_single_gpu();
  EXPECT_GT(it.throughput, 0.0);
  EXPECT_EQ(it.communication, 0.0);
  EXPECT_EQ(it.compression, 0.0);
}

TEST(Timeline, SingleGpuThroughputNearPaperBaselines) {
  // §5.5.2: single-GPU baselines 1150 (ResNet@224), 560 (VGG), 32
  // (Transformer) samples/s.
  TrainingSimulator resnet(Topology::tencent_cloud(1, 1),
                           base_options(Algorithm::kDenseTree));
  EXPECT_NEAR(resnet.simulate_single_gpu().throughput, 1150.0, 120.0);
  TrainingSimulator vgg(Topology::tencent_cloud(1, 1),
                        base_options(Algorithm::kDenseTree, "vgg19", 224, 128));
  EXPECT_NEAR(vgg.simulate_single_gpu().throughput, 560.0, 60.0);
  TrainingSimulator trf(
      Topology::tencent_cloud(1, 1),
      base_options(Algorithm::kDenseTree, "transformer", 224, 16));
  EXPECT_NEAR(trf.simulate_single_gpu().throughput, 32.0, 4.0);
}

TEST(Timeline, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::kDenseTree), "Dense-SGD");
  EXPECT_EQ(algorithm_name(Algorithm::kMstopkHitopk), "MSTopK-SGD");
}

// ------------------------------------------------------------ DAWNBench
TEST(Dawnbench, PaperRecipeShape) {
  const auto schedule = DawnbenchSchedule::paper_recipe();
  EXPECT_EQ(schedule.total_epochs(), 28);
  EXPECT_EQ(schedule.phases.size(), 4u);
  EXPECT_EQ(schedule.phases[0].resolution, 96);
  EXPECT_EQ(schedule.phases[0].algorithm, Algorithm::kMstopkHitopk);
  EXPECT_EQ(schedule.phases[3].local_batch, 128);
}

TEST(Dawnbench, TotalTimeNearPaperRecord) {
  // Table 5: 151 seconds on 128 V100s over 25 GbE.
  const auto report = simulate_dawnbench(simnet::Topology::tencent_cloud(16, 8),
                                         DawnbenchSchedule::paper_recipe());
  EXPECT_GT(report.total_seconds, 120.0);
  EXPECT_LT(report.total_seconds, 185.0);
}

TEST(Dawnbench, ThroughputDecreasesWithResolution) {
  const auto report = simulate_dawnbench(simnet::Topology::tencent_cloud(16, 8),
                                         DawnbenchSchedule::paper_recipe());
  ASSERT_EQ(report.phases.size(), 4u);
  for (size_t i = 1; i < report.phases.size(); ++i) {
    EXPECT_LT(report.phases[i].cluster_throughput,
              report.phases[i - 1].cluster_throughput);
  }
}

TEST(Dawnbench, ColdCachesCostMore) {
  auto schedule = DawnbenchSchedule::paper_recipe();
  schedule.prewarm_caches = false;
  const auto cold = simulate_dawnbench(simnet::Topology::tencent_cloud(16, 8),
                                       schedule);
  schedule.prewarm_caches = true;
  const auto warm = simulate_dawnbench(simnet::Topology::tencent_cloud(16, 8),
                                       schedule);
  EXPECT_GT(cold.total_seconds, warm.total_seconds + 5.0);
}

TEST(Dawnbench, SlowerInterconnectStillUnderCompetitorTime) {
  // The paper's point: 25 GbE beats Alibaba's 158 s on 32 GbE.  Our 25 GbE
  // simulation must stay under 158 s.
  const auto report = simulate_dawnbench(simnet::Topology::tencent_cloud(16, 8),
                                         DawnbenchSchedule::paper_recipe());
  EXPECT_LT(report.total_seconds, 158.0);
}

TEST(Dawnbench, DenseOnlyRecipeIsSlower) {
  // Ablation: replacing MSTopK-SGD with 2DTAR-SGD in the 96^2 phase loses
  // throughput exactly where scaling is hardest.
  auto dense_recipe = DawnbenchSchedule::paper_recipe();
  dense_recipe.phases[0].algorithm = Algorithm::kDense2dTorus;
  const auto topo = simnet::Topology::tencent_cloud(16, 8);
  const auto dense = simulate_dawnbench(topo, dense_recipe);
  const auto paper = simulate_dawnbench(topo, DawnbenchSchedule::paper_recipe());
  EXPECT_GT(dense.total_seconds, paper.total_seconds);
}

}  // namespace
}  // namespace hitopk::train
