// Tests for the tape autodiff engine, including numerical gradient checks
// for every operator.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autodiff/tape.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::ad {
namespace {

// Numerical gradient of `loss_fn` (which rebuilds the graph from the given
// parameter vector) via central differences.
std::vector<float> numerical_gradient(
    std::vector<float>& params,
    const std::function<double(const std::vector<float>&)>& loss_fn,
    double eps = 1e-3) {
  std::vector<float> grad(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const float saved = params[i];
    params[i] = static_cast<float>(saved + eps);
    const double up = loss_fn(params);
    params[i] = static_cast<float>(saved - eps);
    const double down = loss_fn(params);
    params[i] = saved;
    grad[i] = static_cast<float>((up - down) / (2.0 * eps));
  }
  return grad;
}

void expect_grad_close(std::span<const float> analytic,
                       std::span<const float> numeric, float tol = 2e-3f) {
  ASSERT_EQ(analytic.size(), numeric.size());
  for (size_t i = 0; i < analytic.size(); ++i) {
    EXPECT_NEAR(analytic[i], numeric[i],
                tol * (1.0f + std::fabs(numeric[i])))
        << "grad element " << i;
  }
}

// ------------------------------------------------------------ forward ops
TEST(Tape, MatmulForwardKnownValues) {
  Tape tape;
  Tensor a = Tensor::from(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::from(2, 2, {5, 6, 7, 8});
  const VarId c = tape.matmul(tape.leaf(a.span(), {}, 2, 2),
                              tape.leaf(b.span(), {}, 2, 2));
  auto v = tape.value(c);
  EXPECT_EQ(v[0], 19);  // 1*5 + 2*7
  EXPECT_EQ(v[1], 22);
  EXPECT_EQ(v[2], 43);
  EXPECT_EQ(v[3], 50);
}

TEST(Tape, MatmulShapeMismatchThrows) {
  Tape tape;
  Tensor a(2, 3), b(2, 3);
  const VarId va = tape.leaf(a.span(), {}, 2, 3);
  const VarId vb = tape.leaf(b.span(), {}, 2, 3);
  EXPECT_THROW(tape.matmul(va, vb), CheckError);
}

TEST(Tape, BiasBroadcastsOverRows) {
  Tape tape;
  Tensor x = Tensor::from(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::from({10, 20});
  const VarId out = tape.add_bias(tape.leaf(x.span(), {}, 2, 2),
                                  tape.leaf(b.span(), {}, 1, 2));
  auto v = tape.value(out);
  EXPECT_EQ(v[0], 11);
  EXPECT_EQ(v[3], 24);
}

TEST(Tape, ReluClampsNegatives) {
  Tape tape;
  Tensor x = Tensor::from({-1.0f, 0.0f, 2.0f});
  const VarId out = tape.relu(tape.leaf(x.span(), {}, 3, 1));
  auto v = tape.value(out);
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(v[1], 0.0f);
  EXPECT_EQ(v[2], 2.0f);
}

TEST(Tape, EmbeddingSelectsRows) {
  Tape tape;
  Tensor table = Tensor::from(3, 2, {1, 2, 3, 4, 5, 6});
  const VarId out =
      tape.embedding(tape.leaf(table.span(), {}, 3, 2), {2, 0, 2});
  auto v = tape.value(out);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[1], 6);
  EXPECT_EQ(v[2], 1);
  EXPECT_EQ(v[4], 5);
}

TEST(Tape, EmbeddingOutOfRangeThrows) {
  Tape tape;
  Tensor table(3, 2);
  const VarId t = tape.leaf(table.span(), {}, 3, 2);
  EXPECT_THROW(tape.embedding(t, {3}), CheckError);
}

TEST(Tape, MeanPoolAverages) {
  Tape tape;
  Tensor x = Tensor::from(4, 1, {1, 3, 10, 20});
  const VarId out = tape.mean_pool(tape.leaf(x.span(), {}, 4, 1), 2);
  auto v = tape.value(out);
  EXPECT_EQ(v[0], 2.0f);
  EXPECT_EQ(v[1], 15.0f);
}

TEST(Tape, SoftmaxXentOfUniformLogitsIsLogC) {
  Tape tape;
  Tensor logits(4, 5);
  const double loss = tape.softmax_cross_entropy(
      tape.leaf(logits.span(), {}, 4, 5), std::vector<int>{0, 1, 2, 3});
  EXPECT_NEAR(loss, std::log(5.0), 1e-6);
}

TEST(Tape, SecondLossThrows) {
  Tape tape;
  Tensor logits(1, 2);
  const VarId l = tape.leaf(logits.span(), {}, 1, 2);
  tape.softmax_cross_entropy(l, std::vector<int>{0});
  EXPECT_THROW(tape.softmax_cross_entropy(l, std::vector<int>{0}), CheckError);
}

TEST(Tape, BackwardWithoutLossThrows) {
  Tape tape;
  EXPECT_THROW(tape.backward(), CheckError);
}

// --------------------------------------------------- numerical gradients
TEST(TapeGradient, LinearSoftmaxLayer) {
  // loss(W, b) over a fixed batch; check dW and db numerically.
  Rng rng(5);
  Tensor x(4, 3);
  x.fill_normal(rng, 0.0f, 1.0f);
  std::vector<int> labels{1, 0, 1, 0};
  std::vector<float> params(3 * 2 + 2);
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 0.5));

  auto loss_fn = [&](const std::vector<float>& p) {
    Tape tape;
    std::span<const float> w(p.data(), 6);
    std::span<const float> b(p.data() + 6, 2);
    const VarId logits = tape.add_bias(
        tape.matmul(tape.leaf(x.span(), {}, 4, 3), tape.leaf(w, {}, 3, 2)),
        tape.leaf(b, {}, 1, 2));
    return tape.softmax_cross_entropy(logits, labels);
  };

  std::vector<float> analytic(params.size(), 0.0f);
  {
    Tape tape;
    std::span<const float> w(params.data(), 6);
    std::span<const float> b(params.data() + 6, 2);
    std::span<float> gw(analytic.data(), 6);
    std::span<float> gb(analytic.data() + 6, 2);
    const VarId logits = tape.add_bias(
        tape.matmul(tape.leaf(x.span(), {}, 4, 3), tape.leaf(w, gw, 3, 2)),
        tape.leaf(b, gb, 1, 2));
    tape.softmax_cross_entropy(logits, labels);
    tape.backward();
  }
  const auto numeric = numerical_gradient(params, loss_fn);
  expect_grad_close(analytic, numeric);
}

TEST(TapeGradient, TwoLayerReluMlp) {
  Rng rng(7);
  const size_t dim = 4, hidden = 5, classes = 3, batch = 6;
  Tensor x(batch, dim);
  x.fill_normal(rng, 0.0f, 1.0f);
  std::vector<int> labels;
  for (size_t i = 0; i < batch; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(classes)));
  }
  const size_t n_params = dim * hidden + hidden + hidden * classes + classes;
  std::vector<float> params(n_params);
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 0.4));

  auto build = [&](const std::vector<float>& p, std::vector<float>* grad,
                   Tape& tape) {
    size_t off = 0;
    auto leaf = [&](size_t rows, size_t cols) {
      std::span<const float> value(p.data() + off, rows * cols);
      std::span<float> g =
          grad ? std::span<float>(grad->data() + off, rows * cols)
               : std::span<float>{};
      off += rows * cols;
      return tape.leaf(value, g, rows, cols);
    };
    const VarId w1 = leaf(dim, hidden);
    const VarId b1 = leaf(1, hidden);
    const VarId w2 = leaf(hidden, classes);
    const VarId b2 = leaf(1, classes);
    const VarId input = tape.leaf(x.span(), {}, batch, dim);
    const VarId h = tape.relu(tape.add_bias(tape.matmul(input, w1), b1));
    const VarId logits = tape.add_bias(tape.matmul(h, w2), b2);
    return tape.softmax_cross_entropy(logits, labels);
  };

  std::vector<float> analytic(n_params, 0.0f);
  {
    Tape tape;
    build(params, &analytic, tape);
    tape.backward();
  }
  auto loss_fn = [&](const std::vector<float>& p) {
    Tape tape;
    return build(p, nullptr, tape);
  };
  const auto numeric = numerical_gradient(params, loss_fn);
  expect_grad_close(analytic, numeric, 5e-3f);
}

TEST(TapeGradient, TanhActivation) {
  Rng rng(11);
  std::vector<float> params(6);
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 0.6));
  Tensor x(3, 2);
  x.fill_normal(rng, 0.0f, 1.0f);
  std::vector<int> labels{0, 1, 2};

  auto build = [&](const std::vector<float>& p, std::vector<float>* grad,
                   Tape& tape) {
    std::span<const float> w(p.data(), 6);
    std::span<float> g =
        grad ? std::span<float>(grad->data(), 6) : std::span<float>{};
    const VarId h =
        tape.tanh_act(tape.matmul(tape.leaf(x.span(), {}, 3, 2),
                                  tape.leaf(w, g, 2, 3)));
    return tape.softmax_cross_entropy(h, labels);
  };
  std::vector<float> analytic(6, 0.0f);
  {
    Tape tape;
    build(params, &analytic, tape);
    tape.backward();
  }
  auto loss_fn = [&](const std::vector<float>& p) {
    Tape tape;
    return build(p, nullptr, tape);
  };
  expect_grad_close(analytic, numerical_gradient(params, loss_fn));
}

TEST(TapeGradient, EmbeddingMeanPoolModel) {
  Rng rng(13);
  const size_t vocab = 7, width = 3, classes = 4, batch = 5, seq = 4;
  const size_t n_params = vocab * width + width * classes;
  std::vector<float> params(n_params);
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 0.5));
  std::vector<int> ids;
  std::vector<int> labels;
  for (size_t i = 0; i < batch; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_index(classes)));
    for (size_t t = 0; t < seq; ++t) {
      ids.push_back(static_cast<int>(rng.uniform_index(vocab)));
    }
  }

  auto build = [&](const std::vector<float>& p, std::vector<float>* grad,
                   Tape& tape) {
    std::span<const float> table(p.data(), vocab * width);
    std::span<const float> w(p.data() + vocab * width, width * classes);
    std::span<float> gt, gw;
    if (grad) {
      gt = std::span<float>(grad->data(), vocab * width);
      gw = std::span<float>(grad->data() + vocab * width, width * classes);
    }
    const VarId emb = tape.embedding(tape.leaf(table, gt, vocab, width), ids);
    const VarId pooled = tape.mean_pool(emb, seq);
    const VarId logits = tape.matmul(pooled, tape.leaf(w, gw, width, classes));
    return tape.softmax_cross_entropy(logits, labels);
  };
  std::vector<float> analytic(n_params, 0.0f);
  {
    Tape tape;
    build(params, &analytic, tape);
    tape.backward();
  }
  auto loss_fn = [&](const std::vector<float>& p) {
    Tape tape;
    return build(p, nullptr, tape);
  };
  expect_grad_close(analytic, numerical_gradient(params, loss_fn));
}

TEST(TapeGradient, GradientsAccumulateAcrossBackwardPasses) {
  // Two identical backward passes into the same leaf grad buffer must sum.
  std::vector<float> grad(2, 0.0f);
  Tensor w = Tensor::from(1, 2, {0.3f, -0.2f});
  Tensor x = Tensor::from(1, 1, {1.0f});
  double first_grad = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    Tape tape;
    const VarId logits =
        tape.matmul(tape.leaf(x.span(), {}, 1, 1),
                    tape.leaf(w.span(), std::span<float>(grad), 1, 2));
    tape.softmax_cross_entropy(logits, std::vector<int>{0});
    tape.backward();
    if (pass == 0) first_grad = grad[0];
  }
  EXPECT_NEAR(grad[0], 2.0 * first_grad, 1e-6);
}

TEST(Tape, ChannelPoolAveragesPerChannel) {
  Tape tape;
  // 1 row, 2 channels x 3 spatial.
  Tensor x = Tensor::from(1, 6, {1, 2, 3, 10, 20, 30});
  const VarId out = tape.channel_pool(tape.leaf(x.span(), {}, 1, 6), 2);
  auto v = tape.value(out);
  EXPECT_FLOAT_EQ(v[0], 2.0f);
  EXPECT_FLOAT_EQ(v[1], 20.0f);
}

TEST(Tape, ChannelPoolShapeCheck) {
  Tape tape;
  Tensor x(1, 7);
  const VarId v = tape.leaf(x.span(), {}, 1, 7);
  EXPECT_THROW(tape.channel_pool(v, 2), CheckError);
}

TEST(TapeGradient, ChannelPoolNumericalCheck) {
  Rng rng(37);
  const size_t channels = 3, spatial = 4, classes = 2, batch = 2;
  Tensor x(batch, channels * spatial);
  x.fill_normal(rng, 0.0f, 1.0f);
  std::vector<int> labels{0, 1};
  std::vector<float> params(channels * classes);
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 0.5));
  auto build = [&](const std::vector<float>& p, std::vector<float>* grad,
                   Tape& tape) {
    std::span<const float> w(p.data(), p.size());
    std::span<float> g =
        grad ? std::span<float>(grad->data(), grad->size()) : std::span<float>{};
    const VarId pooled = tape.channel_pool(
        tape.leaf(x.span(), {}, batch, channels * spatial), channels);
    const VarId logits = tape.matmul(pooled, tape.leaf(w, g, channels, classes));
    return tape.softmax_cross_entropy(logits, labels);
  };
  std::vector<float> analytic(params.size(), 0.0f);
  {
    Tape tape;
    build(params, &analytic, tape);
    tape.backward();
  }
  auto loss_fn = [&](const std::vector<float>& p) {
    Tape tape;
    return build(p, nullptr, tape);
  };
  expect_grad_close(analytic, numerical_gradient(params, loss_fn));
}

TEST(Tape, Conv2dIdentityKernel) {
  // A kernel with a single center 1 reproduces the input.
  Tape tape;
  Tensor x(1, 16);  // 1 channel, 4x4
  for (size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor kernel = Tensor::from(1, 9, {0, 0, 0, 0, 1, 0, 0, 0, 0});
  const VarId out = tape.conv2d(tape.leaf(x.span(), {}, 1, 16),
                                tape.leaf(kernel.span(), {}, 1, 9), 1, 4, 4, 1,
                                3);
  auto v = tape.value(out);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(v[i], x[i]);
}

TEST(Tape, Conv2dBoxKernelWithPadding) {
  // All-ones 3x3 kernel on an all-ones image: interior sums 9, corner 4,
  // edge 6 (zero padding).
  Tape tape;
  Tensor x(1, 16);
  x.fill(1.0f);
  Tensor kernel(1, 9);
  kernel.fill(1.0f);
  const VarId out = tape.conv2d(tape.leaf(x.span(), {}, 1, 16),
                                tape.leaf(kernel.span(), {}, 1, 9), 1, 4, 4, 1,
                                3);
  auto v = tape.value(out);
  EXPECT_EQ(v[0], 4.0f);   // corner
  EXPECT_EQ(v[1], 6.0f);   // edge
  EXPECT_EQ(v[5], 9.0f);   // interior
}

TEST(Tape, Conv2dShapeChecks) {
  Tape tape;
  Tensor x(2, 16), w(3, 9);
  const VarId vx = tape.leaf(x.span(), {}, 2, 16);
  const VarId vw = tape.leaf(w.span(), {}, 3, 9);
  EXPECT_NO_THROW(tape.conv2d(vx, vw, 1, 4, 4, 3, 3));
  EXPECT_THROW(tape.conv2d(vx, vw, 2, 4, 4, 3, 3), CheckError);  // c_in wrong
  EXPECT_THROW(tape.conv2d(vx, vw, 1, 4, 4, 3, 2), CheckError);  // even k
}

TEST(TapeGradient, Conv2dNumericalCheck) {
  // conv(1->2 channels, 3x3, 5x5 image) -> xent over flattened output
  // columns... simpler: conv -> matmul to classes -> xent; check both the
  // kernel and a downstream dense weight.
  Rng rng(19);
  const size_t h = 5, w = 5, c_out = 2, classes = 3, batch = 3;
  Tensor x(batch, h * w);
  x.fill_normal(rng, 0.0f, 1.0f);
  std::vector<int> labels{0, 2, 1};
  const size_t n_params = c_out * 9 + c_out * h * w * classes;
  std::vector<float> params(n_params);
  for (auto& p : params) p = static_cast<float>(rng.normal(0.0, 0.3));

  auto build = [&](const std::vector<float>& p, std::vector<float>* grad,
                   Tape& tape) {
    std::span<const float> kernel(p.data(), c_out * 9);
    std::span<const float> dense(p.data() + c_out * 9,
                                 c_out * h * w * classes);
    std::span<float> gk, gd;
    if (grad) {
      gk = std::span<float>(grad->data(), c_out * 9);
      gd = std::span<float>(grad->data() + c_out * 9,
                            c_out * h * w * classes);
    }
    const VarId conv = tape.conv2d(tape.leaf(x.span(), {}, batch, h * w),
                                   tape.leaf(kernel, gk, c_out, 9), 1, h, w,
                                   c_out, 3);
    const VarId act = tape.tanh_act(conv);
    const VarId logits =
        tape.matmul(act, tape.leaf(dense, gd, c_out * h * w, classes));
    return tape.softmax_cross_entropy(logits, labels);
  };
  std::vector<float> analytic(n_params, 0.0f);
  {
    Tape tape;
    build(params, &analytic, tape);
    tape.backward();
  }
  auto loss_fn = [&](const std::vector<float>& p) {
    Tape tape;
    return build(p, nullptr, tape);
  };
  expect_grad_close(analytic, numerical_gradient(params, loss_fn), 5e-3f);
}

TEST(TapeGradient, Conv2dInputGradientFlowsThroughStackedConvs) {
  // Two stacked convs: the first kernel's gradient must be nonzero (dX of
  // the second conv feeds it).
  Rng rng(23);
  const size_t h = 4, w = 4;
  Tensor x(2, h * w);
  x.fill_normal(rng, 0.0f, 1.0f);
  std::vector<float> k1(2 * 9), k2(1 * 2 * 9);
  for (auto& v : k1) v = static_cast<float>(rng.normal(0.0, 0.4));
  for (auto& v : k2) v = static_cast<float>(rng.normal(0.0, 0.4));
  std::vector<float> g1(k1.size(), 0.0f), g2(k2.size(), 0.0f);
  Tape tape;
  const VarId c1 = tape.conv2d(
      tape.leaf(x.span(), {}, 2, h * w),
      tape.leaf(std::span<const float>(k1), std::span<float>(g1), 2, 9), 1, h,
      w, 2, 3);
  const VarId c2 = tape.conv2d(
      tape.relu(c1),
      tape.leaf(std::span<const float>(k2), std::span<float>(g2), 1, 18), 2,
      h, w, 1, 3);
  tape.softmax_cross_entropy(c2, std::vector<int>{0, 5});
  tape.backward();
  double norm1 = 0.0;
  for (float v : g1) norm1 += std::fabs(v);
  EXPECT_GT(norm1, 0.0);
}

TEST(Tape, CountTopkCorrect) {
  // logits rows: correct label ranked 1st, 3rd, and last.
  std::vector<float> logits{
      9, 1, 2, 3, 4,   // label 0: rank 1
      5, 1, 9, 8, 0,   // label 1: rank 4
      0, 1, 2, 3, 9,   // label 4: rank 1
  };
  std::vector<int> labels{0, 1, 4};
  EXPECT_EQ(Tape::count_topk_correct(logits, 3, 5, labels, 1), 2u);
  EXPECT_EQ(Tape::count_topk_correct(logits, 3, 5, labels, 3), 2u);
  EXPECT_EQ(Tape::count_topk_correct(logits, 3, 5, labels, 4), 3u);
}

}  // namespace
}  // namespace hitopk::ad
