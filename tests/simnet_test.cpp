// Tests for the cluster timing engine: topology mapping, alpha-beta link
// costs, port serialization, and the shared-NIC contention model.
#include <gtest/gtest.h>

#include "core/check.h"
#include "simnet/cluster.h"
#include "simnet/topology.h"

namespace hitopk::simnet {
namespace {

Topology tiny() {
  // 2 nodes x 2 GPUs, round numbers for hand-checkable costs:
  // intra 1 GB/s / 1 us, inter 0.1 GB/s / 10 us.
  return Topology(2, 2, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// ------------------------------------------------------------ topology
TEST(Topology, RankMapping) {
  Topology t = tiny();
  EXPECT_EQ(t.world_size(), 4);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 1);
  EXPECT_EQ(t.local_rank(3), 1);
  EXPECT_EQ(t.rank_of(1, 0), 2);
  EXPECT_TRUE(t.same_node(0, 1));
  EXPECT_FALSE(t.same_node(1, 2));
}

TEST(Topology, LinkSelection) {
  Topology t = tiny();
  EXPECT_DOUBLE_EQ(t.link_between(0, 1).beta, 1e-9);
  EXPECT_DOUBLE_EQ(t.link_between(0, 2).beta, 1e-8);
}

TEST(Topology, TransferSeconds) {
  LinkParams link{2e-6, 1e-9};
  EXPECT_DOUBLE_EQ(link.transfer_seconds(1000), 2e-6 + 1e-6);
}

TEST(Topology, OutOfRangeRankThrows) {
  Topology t = tiny();
  EXPECT_THROW(t.node_of(4), CheckError);
  EXPECT_THROW(t.rank_of(2, 0), CheckError);
  EXPECT_THROW(t.rank_of(0, 2), CheckError);
}

TEST(Topology, PresetsOrderedByInterBandwidth) {
  // NIC aggregate capacity: 100G IB > 32GbE (Aliyun) > 25GbE (Tencent);
  // per-flow TCP rate is the same on both Ethernet clouds, and InfiniBand
  // flows reach line rate.
  auto tencent = Topology::tencent_cloud();
  auto aliyun = Topology::aliyun();
  auto ib = Topology::infiniband_100g();
  EXPECT_GT(tencent.nic_beta(), aliyun.nic_beta());
  EXPECT_GT(aliyun.nic_beta(), ib.nic_beta());
  EXPECT_EQ(tencent.inter().beta, aliyun.inter().beta);
  EXPECT_GT(tencent.inter().beta, ib.inter().beta);
  EXPECT_LT(tencent.intra().beta, tencent.inter().beta);
  EXPECT_EQ(tencent.world_size(), 128);
}

TEST(Topology, DescribeMentionsShape) {
  const std::string s = Topology::tencent_cloud().describe();
  EXPECT_NE(s.find("16 nodes"), std::string::npos);
  EXPECT_NE(s.find("8 GPUs"), std::string::npos);
}

// ------------------------------------------------ uneven gpus-per-node
TEST(Topology, UnevenRankMapping) {
  const Topology t(std::vector<int>{3, 1, 2}, LinkParams{1e-6, 1e-9},
                   LinkParams{1e-5, 1e-8});
  EXPECT_EQ(t.world_size(), 6);
  EXPECT_EQ(t.nodes(), 3);
  EXPECT_FALSE(t.uniform());
  EXPECT_EQ(t.gpus_on_node(0), 3);
  EXPECT_EQ(t.gpus_on_node(1), 1);
  EXPECT_EQ(t.gpus_on_node(2), 2);
  EXPECT_EQ(t.max_gpus_per_node(), 3);
  // Ranks 0-2 on node 0, rank 3 on node 1, ranks 4-5 on node 2.
  EXPECT_EQ(t.node_of(2), 0);
  EXPECT_EQ(t.node_of(3), 1);
  EXPECT_EQ(t.node_of(4), 2);
  EXPECT_EQ(t.local_rank(5), 1);
  EXPECT_EQ(t.rank_of(2, 1), 5);
  EXPECT_TRUE(t.same_node(4, 5));
  EXPECT_FALSE(t.same_node(2, 3));
  // The uniform accessor must fail loudly instead of mis-mapping ranks.
  EXPECT_THROW(t.gpus_per_node(), CheckError);
  EXPECT_THROW(t.rank_of(1, 1), CheckError);  // node 1 has a single GPU
  const std::string s = t.describe();
  EXPECT_NE(s.find("{3,1,2}"), std::string::npos);
}

TEST(Topology, UniformVectorCollapsesToUniform) {
  const Topology t(std::vector<int>{2, 2}, LinkParams{1e-6, 1e-9},
                   LinkParams{1e-5, 1e-8});
  EXPECT_TRUE(t.uniform());
  EXPECT_EQ(t.gpus_per_node(), 2);
}

TEST(Topology, FingerprintCoversEveryTimingParameter) {
  // The planner cache keys on the fingerprint: equal fingerprints must mean
  // "any schedule replays to the same clock", so every parameter the timing
  // model reads has to move the hash.
  const Topology base = tiny();
  EXPECT_EQ(base.fingerprint(), tiny().fingerprint());

  const LinkParams intra{1e-6, 1e-9};
  const LinkParams inter{1e-5, 1e-8};
  EXPECT_NE(base.fingerprint(),
            Topology(2, 2, LinkParams{2e-6, 1e-9}, inter).fingerprint());
  EXPECT_NE(base.fingerprint(),
            Topology(2, 2, intra, LinkParams{1e-5, 2e-8}).fingerprint());
  // Same world size, different node shape.
  EXPECT_NE(base.fingerprint(), Topology(4, 1, intra, inter).fingerprint());
  EXPECT_NE(base.fingerprint(),
            Topology(std::vector<int>{3, 1}, intra, inter).fingerprint());
  // NIC capacity, fat-tree oversubscription, pod tiling.
  EXPECT_NE(base.fingerprint(),
            Topology(2, 2, intra, inter, 0.5e-8).fingerprint());
  EXPECT_NE(base.fingerprint(),
            Topology(2, 2, intra, inter, 0.0, 2.0).fingerprint());
  EXPECT_NE(base.fingerprint(),
            Topology(2, 2, intra, inter, 0.0, 1.0, 1).fingerprint());
  // The nic_beta <= 0 default resolves to the per-flow rate before hashing.
  EXPECT_EQ(base.fingerprint(),
            Topology(2, 2, intra, inter, 1e-8).fingerprint());
}

TEST(Cluster, UnevenNodesShareTheirOwnNic) {
  // Node 0 has two GPUs whose inter-node flows share node 0's NIC; the
  // single-GPU node 1 is unaffected.
  const Topology t(std::vector<int>{2, 1, 1}, LinkParams{0.0, 1e-9},
                   LinkParams{0.0, 1e-8});
  Cluster c(t);
  const double a = c.send(0, 2, 1000, 0.0);
  const double b = c.send(1, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, 1e-5);
  EXPECT_DOUBLE_EQ(b, 2e-5);  // serialized behind a on node 0's NIC
}

// ------------------------------------------------ fat-tree oversubscription
TEST(Cluster, SingleLayerCoreCapsAggregateInterNodeRate) {
  // 4 nodes, nic == per-flow rate, core oversubscribed 2:1: the core's
  // aggregate capacity is 4 * nic / 2 = 2 flows' worth, so four concurrent
  // single-hop flows from distinct nodes stagger in pairs.
  const Topology t(4, 2, LinkParams{0.0, 1e-9}, LinkParams{0.0, 1e-8},
                   /*nic_beta=*/1e-8, /*oversubscription=*/2.0);
  Cluster c(t);
  const size_t bytes = 1'000'000;
  // Distinct (src node, dst node) pairs: no NIC is shared.
  const double f1 = c.send(0, 2, bytes, 0.0);   // node 0 -> 1
  const double f2 = c.send(4, 6, bytes, 0.0);   // node 2 -> 3
  // Per-flow time 10 ms; core service per flow = bytes * nic*2/4 = 5 ms.
  EXPECT_DOUBLE_EQ(f1, 1e-2);
  EXPECT_DOUBLE_EQ(f2, 5e-3 + 1e-2);
}

TEST(Cluster, NonBlockingFabricIgnoresOversubscriptionKnob) {
  // f == 1 must leave timings bit-for-bit identical to the plain topology.
  const Topology plain(4, 2, LinkParams{0.0, 1e-9}, LinkParams{0.0, 1e-8});
  const Topology f1(4, 2, LinkParams{0.0, 1e-9}, LinkParams{0.0, 1e-8}, 0.0,
                    1.0, /*nodes_per_pod=*/2);
  Cluster a(plain), b(f1);
  for (int g = 0; g < 4; ++g) {
    EXPECT_DOUBLE_EQ(a.send(g, 7 - g, 12345, 0.0), b.send(g, 7 - g, 12345, 0.0));
  }
}

TEST(Cluster, PodUplinksConstrainOnlyCrossPodFlows) {
  // 4 nodes in pods of 2, uplink oversubscribed 4:1 (uplink capacity =
  // 2 * nic / 4 = nic / 2).  Intra-pod inter-node flows never touch the
  // uplink; cross-pod flows serialize through it at half NIC rate.
  const Topology t(4, 1, LinkParams{0.0, 1e-9}, LinkParams{0.0, 1e-8},
                   /*nic_beta=*/1e-8, /*oversubscription=*/4.0,
                   /*nodes_per_pod=*/2);
  EXPECT_EQ(t.pods(), 2);
  EXPECT_EQ(t.pod_of(1), 0);
  EXPECT_EQ(t.pod_of(2), 1);
  Cluster c(t);
  const size_t bytes = 1'000'000;
  // Intra-pod: nodes 0 -> 1, full per-flow rate (10 ms), uplink untouched.
  EXPECT_DOUBLE_EQ(c.send(0, 1, bytes, 0.0), 1e-2);
  c.reset();
  // Cross-pod: node 0 -> 2 then node 1 -> 3.  Distinct NICs, but both
  // occupy pod 0's uplink send port: service = bytes * nic * 4 / 2 = 20 ms.
  const double x1 = c.send(0, 2, bytes, 0.0);
  const double x2 = c.send(1, 3, bytes, 0.0);
  EXPECT_DOUBLE_EQ(x1, 1e-2);
  EXPECT_DOUBLE_EQ(x2, 2e-2 + 1e-2);
  // An intra-pod flow inside pod 1 is still free to start at once.
  EXPECT_DOUBLE_EQ(c.send(3, 2, bytes, 1e-2), 1e-2 + 1e-2);
}

// ------------------------------------------------------------ cluster
TEST(Cluster, SingleTransferCost) {
  Cluster c(tiny());
  // Intra-node: 1000 bytes at 1 GB/s + 1 us = 2 us.
  EXPECT_DOUBLE_EQ(c.send(0, 1, 1000, 0.0), 2e-6);
  c.reset();
  // Inter-node: 1000 bytes at 0.1 GB/s + 10 us = 20 us.
  EXPECT_DOUBLE_EQ(c.send(0, 2, 1000, 0.0), 2e-5);
}

TEST(Cluster, DataReadyDelaysStart) {
  Cluster c(tiny());
  EXPECT_DOUBLE_EQ(c.send(0, 1, 1000, 5e-6), 5e-6 + 2e-6);
}

TEST(Cluster, SendPortSerializesSameSource) {
  Cluster c(tiny());
  const double first = c.send(0, 1, 1000, 0.0);
  // Second send from rank 0 must wait for the first to finish.
  const double second = c.send(0, 1, 1000, 0.0);
  EXPECT_DOUBLE_EQ(second, first + 2e-6);
}

TEST(Cluster, RecvPortSerializesSameDestination) {
  Cluster c(Topology(1, 3, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8}));
  const double first = c.send(0, 2, 1000, 0.0);
  const double second = c.send(1, 2, 1000, 0.0);
  EXPECT_DOUBLE_EQ(second, first + 2e-6);
}

TEST(Cluster, DisjointIntraNodePairsRunInParallel) {
  Cluster c(Topology(1, 4, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8}));
  const double a = c.send(0, 1, 1000, 0.0);
  const double b = c.send(2, 3, 1000, 0.0);
  // NVLink peer links are independent: both finish at the same time.
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Cluster, SharedNicSerializesInterNodeStreams) {
  // Two GPUs of node 0 each send to their peer in node 1: both cross the
  // node-0 NIC, so the second flow starts only after the NIC has *serviced*
  // the first flow's bytes (here nic_beta == flow beta: 1000 B * 1e-8 =
  // 10 us of service), even though the first flow itself completes at 20 us.
  Cluster c(tiny());
  const double a = c.send(0, 2, 1000, 0.0);
  const double b = c.send(1, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, 2e-5);
  EXPECT_DOUBLE_EQ(b, 1e-5 + 2e-5);
}

TEST(Cluster, NicCapacityAllowsFlowAggregation) {
  // With NIC capacity 4x the per-flow rate, four concurrent flows pipeline
  // through the NIC: each starts one service quantum after the previous.
  Topology topo(2, 4, LinkParams{0.0, 1e-9}, LinkParams{0.0, 1e-8},
                /*nic_beta=*/2.5e-9);
  Cluster c(topo);
  const size_t bytes = 1'000'000;
  double last = 0.0;
  for (int g = 0; g < 4; ++g) {
    last = std::max(last, c.send(g, 4 + g, bytes, 0.0));
  }
  // Pure serialization would take 4 * 10 ms = 40 ms; aggregation finishes
  // the last flow at 3 * 2.5 ms (service staggering) + 10 ms = 17.5 ms.
  EXPECT_NEAR(last, 3.0 * 2.5e-3 + 1e-2, 1e-9);
}

TEST(Cluster, InterNodeStreamsFromDifferentNodesDoNotContend) {
  Cluster c(Topology(3, 1, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8}));
  const double a = c.send(0, 1, 1000, 0.0);
  c.reset();
  const double b0 = c.send(0, 1, 1000, 0.0);
  const double b1 = c.send(2, 1, 1000, 0.0);  // same dst node: recv NIC busy
  EXPECT_DOUBLE_EQ(b0, a);
  EXPECT_GT(b1, b0);
}

TEST(Cluster, SelfSendThrows) {
  Cluster c(tiny());
  EXPECT_THROW(c.send(1, 1, 10, 0.0), CheckError);
}

TEST(Cluster, TrafficAccounting) {
  Cluster c(tiny());
  c.send(0, 1, 100, 0.0);
  c.send(0, 2, 200, 0.0);
  EXPECT_EQ(c.intra_node_bytes(), 100u);
  EXPECT_EQ(c.inter_node_bytes(), 200u);
  c.reset();
  EXPECT_EQ(c.intra_node_bytes(), 0u);
  EXPECT_EQ(c.quiescent_time(), 0.0);
}

TEST(Cluster, QuiescentTimeIsMaxPortTime) {
  Cluster c(tiny());
  c.send(0, 1, 1000, 0.0);
  c.send(0, 2, 1000, 0.0);
  EXPECT_DOUBLE_EQ(c.quiescent_time(), 2e-6 + 2e-5);
}

TEST(Cluster, ComputeIsPureDelay) {
  EXPECT_DOUBLE_EQ(Cluster::compute(1.0, 0.25), 1.25);
}

}  // namespace
}  // namespace hitopk::simnet
