// Cross-module integration and property tests: HiTopKComm across cluster
// shapes, FP16 wire effects, LARS-driven convergence, exhaustive FP16
// round-trips, and system-level consistency checks.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/gtopk.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/ring.h"
#include "core/half.h"
#include "core/rng.h"
#include "train/convergence.h"
#include "train/dawnbench.h"
#include "train/synthetic.h"
#include "train/timeline.h"

namespace hitopk {
namespace {

using coll::HiTopKOptions;
using coll::hitopk_comm;
using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// -------------------------------------------- HiTopKComm shape sweep
class HiTopKShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HiTopKShapeTest, DensityOneEqualsDenseSum) {
  const auto [m, n] = GetParam();
  Topology topo = fabric(m, n);
  Cluster cluster(topo);
  const size_t elems = 120;
  std::vector<Tensor> grads;
  Tensor reference(elems);
  Rng rng(static_cast<uint64_t>(m * 100 + n));
  for (int r = 0; r < m * n; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    reference += t;
    grads.push_back(std::move(t));
  }
  coll::RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  HiTopKOptions options;
  options.density = 1.0;
  hitopk_comm(cluster, spans, elems, options, 0.0);
  for (const auto& g : grads) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_NEAR(g[i], reference[i], 1e-4f);
    }
  }
}

TEST_P(HiTopKShapeTest, SparseResultConsistentAcrossRanks) {
  const auto [m, n] = GetParam();
  Topology topo = fabric(m, n);
  Cluster cluster(topo);
  const size_t elems = 200;
  std::vector<Tensor> grads;
  Rng rng(static_cast<uint64_t>(m * 1000 + n));
  for (int r = 0; r < m * n; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  coll::RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  HiTopKOptions options;
  options.density = 0.1;
  hitopk_comm(cluster, spans, elems, options, 0.0);
  for (size_t r = 1; r < grads.size(); ++r) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(grads[r][i], grads[0][i]) << "rank " << r << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HiTopKShapeTest,
                         ::testing::Values(std::pair{1, 2}, std::pair{1, 8},
                                           std::pair{2, 1}, std::pair{2, 3},
                                           std::pair{3, 4}, std::pair{4, 4},
                                           std::pair{5, 2}, std::pair{8, 8}));

// -------------------------------------------- FP16 wire properties
TEST(HalfExhaustive, EveryHalfValueRoundTripsExactly) {
  // half -> float -> half must be the identity for every finite pattern
  // (float has strictly more precision).
  int checked = 0;
  for (uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const Half h{static_cast<uint16_t>(bits)};
    const float f = half_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads need not round-trip
    const Half back = float_to_half(f);
    ASSERT_EQ(back.bits, h.bits) << "pattern " << bits;
    ++checked;
  }
  EXPECT_GT(checked, 63000);
}

TEST(HalfExhaustive, OrderPreservedOnFiniteValues) {
  // Monotonicity: larger positive half patterns decode to larger floats.
  float prev = half_to_float(Half{0});
  for (uint16_t bits = 1; bits < 0x7c00u; ++bits) {  // positive finites
    const float f = half_to_float(Half{bits});
    ASSERT_GT(f, prev) << bits;
    prev = f;
  }
}

TEST(Fp16Wire, RingAllreduceWithRoundedGradientsStaysClose) {
  Topology topo = fabric(2, 2);
  Cluster cluster(topo);
  const size_t elems = 500;
  std::vector<Tensor> exact_grads, fp16_grads;
  Rng rng(77);
  for (int r = 0; r < 4; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    Tensor rounded = t;
    fp16_round_trip(rounded.span());
    exact_grads.push_back(std::move(t));
    fp16_grads.push_back(std::move(rounded));
  }
  coll::RankData exact_spans, fp16_spans;
  for (auto& g : exact_grads) exact_spans.push_back(g.span());
  for (auto& g : fp16_grads) fp16_spans.push_back(g.span());
  coll::ring_allreduce(cluster, coll::world_group(topo), exact_spans, elems, coll::WireDtype::kFp32, 0.0);
  coll::ring_allreduce(cluster, coll::world_group(topo), fp16_spans, elems, coll::WireDtype::kFp16, 0.0);
  for (size_t i = 0; i < elems; ++i) {
    ASSERT_NEAR(fp16_grads[0][i], exact_grads[0][i],
                4.0f * 1e-3f * (1.0f + std::fabs(exact_grads[0][i])));
  }
}

// -------------------------------------------- convergence variants
TEST(ConvergenceVariants, Fp16GradientsDoNotHurt) {
  train::ConvergenceOptions options;
  options.algorithm = train::ConvergenceAlgorithm::kDense;
  options.epochs = 8;
  options.nodes = 2;
  options.gpus_per_node = 2;
  options.local_batch = 32;
  auto task_a = train::make_vision_task(41);
  const auto fp32 = train::run_convergence(*task_a, options);
  options.gradient_wire = compress::WireDtype::kFp16;
  auto task_b = train::make_vision_task(41);
  const auto fp16 = train::run_convergence(*task_b, options);
  EXPECT_NEAR(fp16.final_quality, fp32.final_quality, 0.03);
}

TEST(ConvergenceVariants, LarsConvergesOnVisionTask) {
  train::ConvergenceOptions options;
  options.algorithm = train::ConvergenceAlgorithm::kMstopk;
  options.epochs = 10;
  options.nodes = 2;
  options.gpus_per_node = 2;
  options.local_batch = 32;
  options.use_lars = true;
  options.learning_rate = 1.2;  // LARS rates rescale per layer
  options.density = 0.05;
  auto task = train::make_vision_task(43);
  const auto result = train::run_convergence(*task, options);
  EXPECT_GT(result.final_quality, 0.7);
}

TEST(ConvergenceVariants, GtopkTracksDense) {
  train::ConvergenceOptions options;
  options.epochs = 10;
  options.nodes = 2;
  options.gpus_per_node = 2;
  options.local_batch = 32;
  options.density = 0.05;
  options.algorithm = train::ConvergenceAlgorithm::kDense;
  auto task_a = train::make_vision_task(47);
  const auto dense = train::run_convergence(*task_a, options);
  options.algorithm = train::ConvergenceAlgorithm::kGtopk;
  auto task_b = train::make_vision_task(47);
  const auto gtopk = train::run_convergence(*task_b, options);
  EXPECT_GT(gtopk.final_quality, dense.final_quality - 0.12);
}

// -------------------------------------------- system-level consistency
TEST(SystemConsistency, HiTopKNeverSlowerOnFasterFabric) {
  HiTopKOptions options;
  options.density = 0.01;
  for (const size_t elems : {1u << 20, 16u << 20, 64u << 20}) {
    Cluster slow(Topology::tencent_cloud(16, 8));
    Cluster fast(Topology::infiniband_100g(16, 8));
    const double t_slow = hitopk_comm(slow, {}, elems, options, 0.0).total;
    const double t_fast = hitopk_comm(fast, {}, elems, options, 0.0).total;
    EXPECT_LE(t_fast, t_slow) << elems;
  }
}

TEST(SystemConsistency, HiTopKTimeMonotonicInDensity) {
  double prev = 0.0;
  for (const double density : {0.001, 0.005, 0.02, 0.1}) {
    Cluster cluster(Topology::tencent_cloud(16, 8));
    HiTopKOptions options;
    options.density = density;
    const double t = hitopk_comm(cluster, {}, 25u << 20, options, 0.0).total;
    EXPECT_GT(t, prev) << density;
    prev = t;
  }
}

TEST(SystemConsistency, ThroughputMonotonicInWorldSize) {
  double prev = 0.0;
  for (const int nodes : {2, 4, 8, 16}) {
    train::TrainerOptions options;
    options.algorithm = train::Algorithm::kMstopkHitopk;
    train::TrainingSimulator sim(Topology::tencent_cloud(nodes, 8), options);
    const double throughput = sim.simulate_iteration().throughput;
    EXPECT_GT(throughput, prev) << nodes;
    prev = throughput;
  }
}

TEST(SystemConsistency, DawnbenchFasterOnFasterInterconnect) {
  const auto slow = train::simulate_dawnbench(
      Topology::tencent_cloud(16, 8), train::DawnbenchSchedule::paper_recipe());
  const auto fast = train::simulate_dawnbench(
      Topology::infiniband_100g(16, 8),
      train::DawnbenchSchedule::paper_recipe());
  EXPECT_LE(fast.total_seconds, slow.total_seconds);
}

TEST(SystemConsistency, TrafficAccountingMatchesHierarchy) {
  // HiTopKComm's inter-node traffic must be far below its intra-node
  // traffic on a wide-node cluster — the whole design goal.
  Cluster cluster(Topology::tencent_cloud(16, 8));
  HiTopKOptions options;
  options.density = 0.01;
  hitopk_comm(cluster, {}, 25u << 20, options, 0.0);
  EXPECT_LT(cluster.inter_node_bytes(), cluster.intra_node_bytes());
}

TEST(SystemConsistency, GtopkMovesLessThanNaiveAg) {
  // gTop-k: O(k log P) per rank vs NaiveAG's O(k P).
  const size_t elems = 1u << 20;
  Topology topo = fabric(4, 4);
  Cluster c_gtopk(topo);
  coll::GtopkOptions gtopk_options;
  gtopk_options.density = 0.01;
  coll::gtopk_comm(c_gtopk, {}, elems, gtopk_options, 0.0);
  const size_t gtopk_bytes =
      c_gtopk.inter_node_bytes() + c_gtopk.intra_node_bytes();
  Cluster c_naive(topo);
  coll::naive_sparse_allgather_time(
      c_naive, static_cast<size_t>(0.01 * elems), 4, 0.0, 0.0);
  const size_t naive_bytes =
      c_naive.inter_node_bytes() + c_naive.intra_node_bytes();
  EXPECT_LT(gtopk_bytes, naive_bytes);
}

}  // namespace
}  // namespace hitopk
