// Tests for the related-work baselines: gTop-k aggregation and the QSGD /
// EF-SignSGD quantizers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "collectives/gtopk.h"
#include "compress/exact_topk.h"
#include "compress/quantizers.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk {
namespace {

using coll::GtopkOptions;
using coll::gtopk_comm;
using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// ------------------------------------------------------------ gTop-k
TEST(Gtopk, AllRanksIdenticalResult) {
  Topology topo = fabric(2, 4);
  Cluster cluster(topo);
  const size_t elems = 300;
  std::vector<Tensor> grads;
  Rng rng(1);
  for (int r = 0; r < 8; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  coll::RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  GtopkOptions options;
  options.density = 0.05;
  gtopk_comm(cluster, spans, elems, options, 0.0);
  for (int r = 1; r < 8; ++r) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(grads[static_cast<size_t>(r)][i], grads[0][i]);
    }
  }
}

TEST(Gtopk, ResultHasAtMostKNonzeros) {
  Topology topo = fabric(2, 2);
  Cluster cluster(topo);
  const size_t elems = 400;
  std::vector<Tensor> grads;
  Rng rng(2);
  for (int r = 0; r < 4; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  coll::RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  GtopkOptions options;
  options.density = 0.1;  // k = 40
  const auto result = gtopk_comm(cluster, spans, elems, options, 0.0);
  size_t nnz = 0;
  for (size_t i = 0; i < elems; ++i) {
    if (grads[0][i] != 0.0f) ++nnz;
  }
  EXPECT_LE(nnz, 40u);
  EXPECT_EQ(result.final_nnz, nnz);
  EXPECT_EQ(result.rounds, 2u);  // log2(4)
}

TEST(Gtopk, SingleSharedSpikeSurvivesAllMerges) {
  // A coordinate that is large on *every* rank must be in the global top-k.
  Topology topo = fabric(2, 4);
  Cluster cluster(topo);
  const size_t elems = 256;
  std::vector<Tensor> grads;
  Rng rng(3);
  for (int r = 0; r < 8; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 0.01f);
    t[137] = 5.0f;
    grads.push_back(std::move(t));
  }
  coll::RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  GtopkOptions options;
  options.density = 0.02;
  gtopk_comm(cluster, spans, elems, options, 0.0);
  EXPECT_NEAR(grads[0][137], 40.0f, 1e-4f);  // 8 ranks x 5.0
}

// Non-power-of-two worlds fold the extra ranks into the hypercube (one
// pre-fold round), run recursive doubling over the largest power of two,
// and unfold the result back out — rounds = log2(q) + 2.
TEST(Gtopk, NonPowerOfTwoWorldsFoldAndConverge) {
  struct Shape {
    int nodes, gpus;
    size_t expected_rounds;
  };
  for (const Shape shape : {Shape{3, 1, 3},    // p=3:  q=2, 1+1+1
                            Shape{3, 2, 4},    // p=6:  q=4, 1+2+1
                            Shape{3, 4, 5}}) {  // p=12: q=8, 1+3+1
    SCOPED_TRACE(shape.nodes * shape.gpus);
    Topology topo = fabric(shape.nodes, shape.gpus);
    Cluster cluster(topo);
    const int p = topo.world_size();
    const size_t elems = 300;
    std::vector<Tensor> grads;
    Rng rng(41);
    for (int r = 0; r < p; ++r) {
      Tensor t(elems);
      t.fill_normal(rng, 0.0f, 0.01f);
      t[17] = 3.0f;  // shared spike must survive every merge
      grads.push_back(std::move(t));
    }
    coll::RankData spans;
    for (auto& g : grads) spans.push_back(g.span());
    GtopkOptions options;
    options.density = 0.05;
    const auto result = gtopk_comm(cluster, spans, elems, options, 0.0);
    EXPECT_EQ(result.rounds, shape.expected_rounds);
    EXPECT_GT(result.total, 0.0);
    // Every rank — including the folded extras — holds the identical set.
    const size_t k = static_cast<size_t>(0.05 * 300 + 0.5);
    size_t nnz = 0;
    for (size_t i = 0; i < elems; ++i) nnz += grads[0][i] != 0.0f ? 1 : 0;
    EXPECT_LE(nnz, k);
    for (int r = 1; r < p; ++r) {
      for (size_t i = 0; i < elems; ++i) {
        ASSERT_EQ(grads[static_cast<size_t>(r)][i], grads[0][i]);
      }
    }
    EXPECT_NEAR(grads[0][17], 3.0f * static_cast<float>(p), 1e-4f);
  }
}

TEST(Gtopk, NonPowerOfTwoTimingAddsFoldRounds) {
  // Timing-only runs support any world size; the fold and unfold rounds
  // each cost at least one inter-rank hop beyond the hypercube rounds.
  GtopkOptions options;
  options.density = 0.01;
  Cluster c12(fabric(3, 4));
  const auto r12 = gtopk_comm(c12, {}, 1 << 20, options, 0.0);
  Cluster c8(fabric(2, 4));
  const auto r8 = gtopk_comm(c8, {}, 1 << 20, options, 0.0);
  EXPECT_EQ(r12.rounds, 5u);  // q=8: fold + 3 + unfold
  EXPECT_EQ(r8.rounds, 3u);   // exact power of two: no fold
  EXPECT_GT(r12.total, r8.total);
}

TEST(Gtopk, TimingScalesLogarithmically) {
  // Payload per round is constant, so total time ~ rounds = log2(P).
  GtopkOptions options;
  options.density = 0.01;
  Cluster c16(fabric(4, 4));
  const auto r16 = gtopk_comm(c16, {}, 1 << 20, options, 0.0);
  Cluster c64(fabric(8, 8));
  const auto r64 = gtopk_comm(c64, {}, 1 << 20, options, 0.0);
  EXPECT_EQ(r16.rounds, 4u);
  EXPECT_EQ(r64.rounds, 6u);
  EXPECT_LT(r64.total, 3.0 * r16.total);
}

TEST(Gtopk, ErrorFeedbackAccumulatesResidual) {
  Topology topo = fabric(1, 2);
  Cluster cluster(topo);
  const size_t elems = 128;
  std::vector<Tensor> grads;
  Rng rng(5);
  for (int r = 0; r < 2; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  coll::RankData spans;
  for (auto& g : grads) spans.push_back(g.span());
  compress::ErrorFeedback ef;
  GtopkOptions options;
  options.density = 0.05;
  options.error_feedback = &ef;
  gtopk_comm(cluster, spans, elems, options, 0.0);
  EXPECT_EQ(ef.num_tensors(), 2u);
  EXPECT_GT(ef.residual_sq_norm(), 0.0);
}

// ------------------------------------------------------------ QSGD
TEST(Qsgd, PreservesSigns) {
  compress::Qsgd qsgd(15, 7);
  Rng rng(11);
  Tensor x(1000);
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor original = x;
  qsgd.quantize(x.span());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] != 0.0f) {
      EXPECT_EQ(std::signbit(x[i]), std::signbit(original[i])) << i;
    }
  }
}

TEST(Qsgd, ValuesOnQuantizationGrid) {
  compress::Qsgd qsgd(4, 9);
  Rng rng(13);
  Tensor x(500);
  x.fill_normal(rng, 0.0f, 1.0f);
  const float norm = x.l2_norm();
  qsgd.quantize(x.span());
  for (size_t i = 0; i < x.size(); ++i) {
    const double level = std::fabs(x[i]) / norm * 4.0;
    EXPECT_NEAR(level, std::round(level), 1e-4) << i;
  }
}

TEST(Qsgd, UnbiasedInExpectation) {
  // Average many quantizations of the same vector: the mean converges to x.
  compress::Qsgd qsgd(4, 17);
  Rng rng(17);
  Tensor x(64);
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor mean(64);
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    Tensor q = x;
    qsgd.quantize(q.span());
    mean += q;
  }
  mean *= 1.0f / trials;
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(mean[i], x[i], 0.05f) << i;
  }
}

TEST(Qsgd, PayloadShrinksWithFewerLevels) {
  compress::Qsgd coarse(1, 1), fine(127, 1);
  EXPECT_LT(coarse.payload_bytes(1 << 20), fine.payload_bytes(1 << 20));
  // 1-level QSGD is ternary: 2 bits per value.
  EXPECT_EQ(coarse.payload_bytes(1 << 20), (1u << 20) * 2 / 8 + 4);
}

TEST(Qsgd, ZeroVectorStaysZero) {
  compress::Qsgd qsgd(15, 23);
  Tensor x(32);
  qsgd.quantize(x.span());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], 0.0f);
}

// ------------------------------------------------------------ SignSGD
TEST(SignCompressor, OutputIsScaledSigns) {
  Tensor x = Tensor::from({2.0f, -4.0f, 6.0f});
  compress::SignCompressor::compress(x.span());
  EXPECT_FLOAT_EQ(x[0], 4.0f);  // mean |x| = 4
  EXPECT_FLOAT_EQ(x[1], -4.0f);
  EXPECT_FLOAT_EQ(x[2], 4.0f);
}

TEST(SignCompressor, PayloadIsOneBitPerValue) {
  EXPECT_EQ(compress::SignCompressor::payload_bytes(800), 100u + 4u);
}

TEST(SignCompressor, WithErrorFeedbackRecoversSum) {
  // EF closure for the biased sign compressor: delivered + residual equals
  // the true accumulated gradient.
  compress::ErrorFeedback ef;
  Rng rng(29);
  Tensor delivered_total(32);
  Tensor true_total(32);
  for (int step = 0; step < 60; ++step) {
    Tensor g(32);
    g.fill_normal(rng, 0.0f, 1.0f);
    true_total += g;
    ef.apply("w", g.span());
    Tensor sent = g;
    compress::SignCompressor::compress(sent.span());
    // Absorb: residual = g - sent.
    compress::SparseTensor all;
    all.dense_size = 32;
    for (uint32_t i = 0; i < 32; ++i) {
      all.indices.push_back(i);
      all.values.push_back(sent[i]);
    }
    // Residual update must be g - sent (not zeroing), so do it directly.
    Tensor residual = g;
    residual -= sent;
    compress::SparseTensor none;
    none.dense_size = 32;
    ef.absorb("w", residual.span(), none);
    delivered_total += sent;
  }
  Tensor leftover(32);
  ef.apply("w", leftover.span());
  delivered_total += leftover;
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(delivered_total[i], true_total[i], 1e-3f);
  }
}

}  // namespace
}  // namespace hitopk
