// ScheduleValidator coverage: every invariant class rejects a hand-built
// broken record with the recoverable ConfigError, and every schedule the
// repo's builders produce passes — including with the all-reduce full-
// coverage contract enabled.  The broken views are assembled directly from
// Send/Move structs because the Schedule recording API refuses to produce
// most of these states itself; that is exactly why the validator runs on a
// ScheduleView.
#include <gtest/gtest.h>

#include <vector>

#include "collectives/blueconnect.h"
#include "collectives/halving_doubling.h"
#include "collectives/hier_allreduce.h"
#include "collectives/ring.h"
#include "collectives/torus2d.h"
#include "collectives/tree_allreduce.h"
#include "collectives/validator.h"
#include "core/check.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

using Send = Schedule::Send;
using Move = Schedule::Move;
using Sync = Schedule::Sync;

// A view owning its primitive storage, for hand-assembled records.
struct OwnedView {
  std::vector<Send> sends;
  std::vector<Move> moves;
  std::vector<Sync> syncs;
  std::vector<Tensor> storage;
  std::vector<RankSpan> buffers;
  std::vector<WireDtype> wires;  // leave empty for all-fp32
  uint32_t num_slots = 0;

  uint32_t add_buffer(size_t elems, WireDtype wire = WireDtype::kFp32) {
    storage.reserve(16);  // keep spans stable across additions
    HITOPK_CHECK_LT(storage.size(), 16u);
    storage.emplace_back(elems);
    buffers.push_back(storage.back().span());
    if (wire != WireDtype::kFp32 || !wires.empty()) {
      wires.resize(buffers.size(), WireDtype::kFp32);
      wires.back() = wire;
    }
    return static_cast<uint32_t>(buffers.size() - 1);
  }
  ScheduleView view() const {
    return ScheduleView{sends, moves, syncs, buffers, wires, num_slots};
  }
};

void expect_rejected(const OwnedView& owned, ValidatorOptions options = {}) {
  EXPECT_THROW(ScheduleValidator(std::move(options)).validate(owned.view()),
               ConfigError);
}

// ------------------------------------------------------ send invariants

TEST(ValidatorSends, NonMonotoneStepRejected) {
  OwnedView v;
  v.num_slots = 2;
  v.sends.push_back({1, 0, 1, 0, 1, 64, 0.0});
  v.sends.push_back({0, 1, 0, 1, 0, 64, 0.0});  // steps back
  expect_rejected(v);
}

TEST(ValidatorSends, RankOutsideWorldRejected) {
  OwnedView v;
  v.num_slots = 2;
  v.sends.push_back({0, 0, 7, 0, 1, 64, 0.0});  // dst 7 of world 4
  ValidatorOptions opts;
  opts.world_size = 4;
  expect_rejected(v, opts);
}

TEST(ValidatorSends, SelfLoopRejected) {
  OwnedView v;
  v.num_slots = 1;
  v.sends.push_back({0, 3, 3, 0, 0, 64, 0.0});
  expect_rejected(v);
}

TEST(ValidatorSends, DeadRankRejected) {
  OwnedView v;
  v.num_slots = 2;
  v.sends.push_back({0, 0, 2, 0, 1, 64, 0.0});  // rank 2 is a casualty
  ValidatorOptions opts;
  opts.world_size = 4;
  opts.live = {true, true, false, true};
  expect_rejected(v, opts);

  ValidatorOptions all_live;
  all_live.world_size = 4;
  all_live.live = {true, true, true, true};
  EXPECT_NO_THROW(ScheduleValidator(all_live).validate(v.view()));
}

TEST(ValidatorSends, SlotOutOfRangeRejected) {
  OwnedView v;
  v.num_slots = 2;
  v.sends.push_back({0, 0, 1, 0, 2, 64, 0.0});  // dst slot 2 of 2
  expect_rejected(v);
}

// ------------------------------------------------------ move invariants

TEST(ValidatorMoves, BufferIdOutOfRangeRejected) {
  OwnedView v;
  v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kCopy, 0, 1, 1, 0, 4});  // buffer 1 of 1
  expect_rejected(v);
}

TEST(ValidatorMoves, RangeOutsideBufferRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kCopy, a, b, b, 6, 4});  // [6, 10) of 8
  expect_rejected(v);
}

TEST(ValidatorMoves, ZeroCountRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kCopy, a, b, b, 0, 0});
  expect_rejected(v);
}

TEST(ValidatorMoves, NonMonotoneStepRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({2, TransferOp::kCopy, a, b, b, 0, 4});
  v.moves.push_back({1, TransferOp::kCopy, b, a, a, 0, 4});  // steps back
  expect_rejected(v);
}

TEST(ValidatorSyncs, NonMonotoneStepRejected) {
  OwnedView v;
  v.syncs.push_back({3, true});
  v.syncs.push_back({1, false});
  expect_rejected(v);
}

// ------------------------------------------------------ race invariants

TEST(ValidatorRaces, OverlappingCrossBucketWritesRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  const uint32_t c = v.add_buffer(8);
  // Buckets a and b both write c[2, 6) in the same step.
  v.moves.push_back({0, TransferOp::kCopy, a, c, a, 2, 4});
  v.moves.push_back({0, TransferOp::kCopy, b, c, b, 2, 4});
  expect_rejected(v);

  // The identical moves one step apart are fine (last writer wins, in
  // order).
  v.moves[1].step = 1;
  EXPECT_NO_THROW(ScheduleValidator().validate(v.view()));
}

TEST(ValidatorRaces, SameBucketOverlappingWritesAllowed) {
  // One bucket runs serially in record order: overlap is ordered, not racy.
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kCopy, a, b, b, 0, 6});
  v.moves.push_back({0, TransferOp::kReduce, a, b, b, 2, 6});
  EXPECT_NO_THROW(ScheduleValidator().validate(v.view()));
}

TEST(ValidatorRaces, CrossBucketReadOfConcurrentWriteRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  const uint32_t c = v.add_buffer(8);
  // Bucket b writes b[0, 4); bucket c concurrently reads b[2, 6).
  v.moves.push_back({0, TransferOp::kCopy, a, b, b, 0, 4});
  v.moves.push_back({0, TransferOp::kCopy, b, c, c, 2, 4});
  expect_rejected(v);
}

// ------------------------------------------------------ chain invariants

TEST(ValidatorChains, MidWithoutFirstRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kChainMid, a, b, b, 0, 4});
  expect_rejected(v);
}

TEST(ValidatorChains, LeftOpenAtStepEndRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kChainFirst, a, b, b, 0, 4});
  v.moves.push_back({0, TransferOp::kChainMid, a, b, b, 0, 4});
  // No kChainLast: the thread-local accumulator would be dropped.
  expect_rejected(v);
}

TEST(ValidatorChains, RangeDisagreementRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kChainFirst, a, b, b, 0, 4});
  v.moves.push_back({0, TransferOp::kChainLast, a, b, b, 2, 4});  // shifted
  expect_rejected(v);
}

TEST(ValidatorChains, InterleavedPlainMoveRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kChainFirst, a, b, b, 0, 4});
  v.moves.push_back({0, TransferOp::kReduce, a, b, b, 0, 4});  // mid-chain
  v.moves.push_back({0, TransferOp::kChainLast, a, b, b, 0, 4});
  expect_rejected(v);
}

TEST(ValidatorChains, WellFormedChainAccepted) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  const uint32_t c = v.add_buffer(8);
  v.moves.push_back({0, TransferOp::kChainFirst, a, c, c, 0, 4});
  v.moves.push_back({0, TransferOp::kChainMid, b, c, c, 0, 4});
  v.moves.push_back({0, TransferOp::kChainLast, a, c, c, 0, 4});
  EXPECT_NO_THROW(ScheduleValidator().validate(v.view()));
}

// ---------------------------------------------------- dtype invariants

TEST(ValidatorDtypes, WireCountMismatchRejected) {
  OwnedView v;
  v.add_buffer(8, WireDtype::kFp16);
  v.add_buffer(8);
  v.wires.pop_back();  // one dtype for two buffers
  expect_rejected(v);
}

TEST(ValidatorDtypes, MixedWireMoveRejected) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8, WireDtype::kFp16);
  const uint32_t b = v.add_buffer(8);  // fp32
  v.moves.push_back({0, TransferOp::kCopy, a, b, b, 0, 4});
  expect_rejected(v);

  // The same move between same-dtype buffers is fine.
  OwnedView ok;
  const uint32_t c = ok.add_buffer(8, WireDtype::kFp16);
  const uint32_t d = ok.add_buffer(8, WireDtype::kFp16);
  ok.moves.push_back({0, TransferOp::kCopy, c, d, d, 0, 4});
  EXPECT_NO_THROW(ScheduleValidator().validate(ok.view()));
}

TEST(ValidatorDtypes, ChainWireFlipRejected) {
  // A reduction chain shares one accumulator; a link landing in a buffer of
  // a different wire dtype than the chain head would re-encode the partial
  // sum on a different grid mid-chain.
  OwnedView v;
  const uint32_t a = v.add_buffer(8, WireDtype::kInt8);
  const uint32_t b = v.add_buffer(8, WireDtype::kInt8);
  const uint32_t c = v.add_buffer(8, WireDtype::kInt8);
  v.moves.push_back({0, TransferOp::kChainFirst, a, b, b, 0, 4});
  v.moves.push_back({0, TransferOp::kChainLast, c, b, b, 0, 4});
  EXPECT_NO_THROW(ScheduleValidator().validate(v.view()));  // one dtype: fine

  OwnedView flip;
  const uint32_t d = flip.add_buffer(8, WireDtype::kInt8);
  const uint32_t e = flip.add_buffer(8, WireDtype::kInt8);
  const uint32_t f = flip.add_buffer(8, WireDtype::kFp16);
  const uint32_t g = flip.add_buffer(8, WireDtype::kFp16);
  flip.moves.push_back({0, TransferOp::kChainFirst, d, e, e, 0, 4});
  // Same-dtype endpoints (fp16 -> fp16), so only the chain rule can object:
  // the link's accumulator dtype flips away from the int8 chain head.
  flip.moves.push_back({0, TransferOp::kChainLast, g, f, e, 0, 4});
  expect_rejected(flip);
}

// --------------------------------------------------- coverage invariant

TEST(ValidatorCoverage, GapRejectedOnlyWhenRequired) {
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  // b[0, 3) and b[5, 8) written; [3, 5) never is.  a is never written at
  // all.
  v.moves.push_back({0, TransferOp::kCopy, a, b, b, 0, 3});
  v.moves.push_back({1, TransferOp::kCopy, a, b, b, 5, 3});
  EXPECT_NO_THROW(ScheduleValidator().validate(v.view()));
  ValidatorOptions opts;
  opts.require_full_coverage = true;
  expect_rejected(v, opts);
}

TEST(ValidatorCoverage, AliasedRegistrationsCountOnce) {
  // BlueConnect-style: the same span registered as several buffer ids.
  // Writing it through one id covers every alias.
  OwnedView v;
  const uint32_t a = v.add_buffer(8);
  const uint32_t b = v.add_buffer(8);
  v.buffers.push_back(v.buffers[b]);  // alias of b
  v.moves.push_back({0, TransferOp::kCopy, a, b, b, 0, 8});
  v.moves.push_back({1, TransferOp::kCopy, b, a, a, 0, 8});
  ValidatorOptions opts;
  opts.require_full_coverage = true;
  EXPECT_NO_THROW(ScheduleValidator(opts).validate(v.view()));
}

// ----------------------------------------- every real builder validates

std::vector<Tensor> buffers_of(int world, size_t elems) {
  std::vector<Tensor> buffers;
  for (int r = 0; r < world; ++r) {
    Tensor t(elems);
    for (size_t i = 0; i < elems; ++i) {
      t.span()[i] = static_cast<float>((r * 31 + static_cast<int>(i)) % 17);
    }
    buffers.push_back(std::move(t));
  }
  return buffers;
}

RankData spans_of(std::vector<Tensor>& buffers) {
  RankData spans;
  for (auto& b : buffers) spans.push_back(b.span());
  return spans;
}

void expect_valid(const Schedule& sched, const Topology& topo,
                  bool full_coverage) {
  ValidatorOptions opts;
  opts.world_size = topo.world_size();
  opts.require_full_coverage = full_coverage;
  EXPECT_NO_THROW(ScheduleValidator(std::move(opts)).validate(sched));
}

class BuilderValidationTest
    : public ::testing::TestWithParam<std::tuple<int, int, size_t>> {};

TEST_P(BuilderValidationTest, AllBuildersPass) {
  const auto [m, n, elems] = GetParam();
  const Topology topo = fabric(m, n);
  const Group world = world_group(topo);
  std::vector<Tensor> buffers = buffers_of(topo.world_size(), elems);
  const RankData data = spans_of(buffers);

  {  // flat ring All-Reduce (the planner's baseline candidate)
    Schedule sched;
    std::vector<Group> groups{world};
    std::vector<RankData> group_data{data};
    const RingGrid grid = ring_grid(sched, groups, group_data);
    build_ring_reduce_scatter(sched, groups, grid, elems, WireDtype::kFp32,
                              /*fused_chains=*/true);
    sched.sync(/*collapse=*/true);
    build_ring_allgather(sched, groups, grid, elems, WireDtype::kFp32);
    // A single-rank "All-Reduce" records no moves, so its buffer is
    // legitimately never written; coverage only binds real exchanges.
    expect_valid(sched, topo, /*full_coverage=*/topo.world_size() > 1);
  }
  {  // standalone RS leg: legitimately covers only the owner chunks
    Schedule sched;
    std::vector<Group> groups{world};
    std::vector<RankData> group_data{data};
    const RingGrid grid = ring_grid(sched, groups, group_data);
    build_ring_reduce_scatter(sched, groups, grid, elems, WireDtype::kFp32);
    expect_valid(sched, topo, /*full_coverage=*/false);
  }
  {  // halving-doubling (including fold/unfold worlds)
    Schedule sched;
    build_halving_doubling(sched, world, data, elems, WireDtype::kFp32);
    expect_valid(sched, topo, /*full_coverage=*/topo.world_size() > 1);
  }
  if (topo.world_size() > 1) {  // double binary tree
    Schedule sched;
    TreeOptions tree;
    tree.chunk_bytes = 64;  // force multi-chunk pipelining
    build_tree_allreduce(sched, topo, data, elems, tree);
    expect_valid(sched, topo, /*full_coverage=*/true);
  }
  if (topo.nodes() > 1) {  // hierarchical leader All-Reduce
    Schedule sched;
    build_hier_allreduce(sched, topo, data, elems, WireDtype::kFp32);
    expect_valid(sched, topo, /*full_coverage=*/true);
  }
  if (topo.nodes() > 1 && topo.gpus_per_node() > 1) {  // 2D torus
    Schedule sched;
    build_torus2d(sched, topo, data, elems, WireDtype::kFp32);
    expect_valid(sched, topo, /*full_coverage=*/true);
  }
  if (topo.world_size() > 1) {  // BlueConnect auto factorization
    Schedule sched;
    BlueConnectOptions bc;
    build_blueconnect(sched, topo, data, elems, bc);
    expect_valid(sched, topo, /*full_coverage=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BuilderValidationTest,
    ::testing::Values(std::tuple<int, int, size_t>{1, 1, 16},
                      std::tuple<int, int, size_t>{1, 4, 64},
                      std::tuple<int, int, size_t>{2, 2, 37},
                      std::tuple<int, int, size_t>{3, 2, 96},
                      std::tuple<int, int, size_t>{2, 3, 41},
                      std::tuple<int, int, size_t>{4, 4, 256},
                      std::tuple<int, int, size_t>{5, 3, 128}));

TEST(BuilderValidation, UnevenTopologyHierAndHd) {
  const Topology topo(std::vector<int>{3, 1, 2}, LinkParams{1e-6, 1e-9},
                      LinkParams{1e-5, 1e-8});
  const size_t elems = 50;
  std::vector<Tensor> buffers = buffers_of(topo.world_size(), elems);
  const RankData data = spans_of(buffers);
  {
    Schedule sched;
    build_hier_allreduce(sched, topo, data, elems, WireDtype::kFp32);
    expect_valid(sched, topo, /*full_coverage=*/true);
  }
  {
    Schedule sched;
    build_halving_doubling(sched, world_group(topo), data, elems, WireDtype::kFp32);
    expect_valid(sched, topo, /*full_coverage=*/true);
  }
}

TEST(BuilderValidation, QuantizedBuildersPass) {
  // Every builder's quantized schedule satisfies the dtype rules it is
  // validated against — the engine records one wire per buffer end to end.
  const Topology topo = fabric(3, 2);
  const Group world = world_group(topo);
  const size_t elems = 96;
  std::vector<Tensor> buffers = buffers_of(topo.world_size(), elems);
  const RankData data = spans_of(buffers);
  for (const WireDtype wire : {WireDtype::kFp16, WireDtype::kInt8}) {
    {
      Schedule sched;
      std::vector<Group> groups{world};
      std::vector<RankData> group_data{data};
      const RingGrid grid = ring_grid(sched, groups, group_data, wire);
      build_ring_reduce_scatter(sched, groups, grid, elems, wire,
                                /*fused_chains=*/true);
      sched.sync(/*collapse=*/true);
      build_ring_allgather(sched, groups, grid, elems, wire);
      expect_valid(sched, topo, /*full_coverage=*/true);
    }
    {
      Schedule sched;
      build_hier_allreduce(sched, topo, data, elems, wire);
      expect_valid(sched, topo, /*full_coverage=*/true);
    }
    {
      Schedule sched;
      build_halving_doubling(sched, world, data, elems, wire);
      expect_valid(sched, topo, /*full_coverage=*/true);
    }
  }
}

}  // namespace
}  // namespace hitopk::coll
