// Tests for the compression operators: exact top-k, DGC, MSTopK (Alg. 1),
// random-k, threshold-k, error feedback, and cross-operator properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "compress/dgc_topk.h"
#include "compress/error_feedback.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "compress/other_compressors.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::compress {
namespace {

Tensor random_gradient(size_t d, uint64_t seed, double stddev = 1.0) {
  Rng rng(seed);
  Tensor t(d);
  t.fill_normal(rng, 0.0f, static_cast<float>(stddev));
  return t;
}

// Magnitude of the smallest selected element must be >= the (k+slack)-th
// exact magnitude; used to judge approximate selections.
float kth_magnitude(const Tensor& x, size_t k) {
  return exact_topk_threshold(x.span(), k);
}

// ------------------------------------------------------------ SparseTensor
TEST(SparseTensor, ScatterAddAccumulatesDuplicates) {
  SparseTensor s;
  s.dense_size = 4;
  s.indices = {1, 1, 3};
  s.values = {2.0f, 3.0f, -1.0f};
  Tensor dense(4);
  s.scatter_add_into(dense.span());
  EXPECT_EQ(dense[1], 5.0f);
  EXPECT_EQ(dense[3], -1.0f);
  EXPECT_EQ(dense[0], 0.0f);
}

TEST(SparseTensor, ToDense) {
  SparseTensor s;
  s.dense_size = 3;
  s.indices = {2};
  s.values = {7.0f};
  Tensor d = s.to_dense();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d[2], 7.0f);
}

TEST(SparseTensor, SortByIndex) {
  SparseTensor s;
  s.dense_size = 10;
  s.indices = {5, 1, 9};
  s.values = {50.0f, 10.0f, 90.0f};
  s.sort_by_index();
  EXPECT_EQ(s.indices, (std::vector<uint32_t>{1, 5, 9}));
  EXPECT_EQ(s.values, (std::vector<float>{10.0f, 50.0f, 90.0f}));
}

TEST(SparseTensor, ValidityChecks) {
  SparseTensor s;
  s.dense_size = 4;
  s.indices = {3};
  s.values = {1.0f};
  EXPECT_TRUE(s.is_valid());
  s.indices = {4};
  EXPECT_FALSE(s.is_valid());
  s.indices = {0, 1};
  EXPECT_FALSE(s.is_valid());  // values/indices length mismatch
}

TEST(SparseTensor, AccumulateManyParts) {
  SparseTensor a, b;
  a.dense_size = b.dense_size = 5;
  a.indices = {0, 2};
  a.values = {1.0f, 2.0f};
  b.indices = {2, 4};
  b.values = {10.0f, 20.0f};
  std::vector<SparseTensor> parts{a, b};
  Tensor sum = accumulate(parts, 5);
  EXPECT_EQ(sum[0], 1.0f);
  EXPECT_EQ(sum[2], 12.0f);
  EXPECT_EQ(sum[4], 20.0f);
}

TEST(SparseTensor, AccumulateNoPartsIsZero) {
  std::vector<SparseTensor> parts;
  Tensor sum = accumulate(parts, 4);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(sum[i], 0.0f);
}

TEST(SparseTensor, AccumulateEmptyPartsAndZeroesDestination) {
  SparseTensor empty;
  empty.dense_size = 3;
  SparseTensor one;
  one.dense_size = 3;
  one.indices = {1};
  one.values = {2.5f};
  std::vector<SparseTensor> parts{empty, one, empty};
  Tensor dense(3);
  dense.fill(9.0f);  // accumulate_into must zero stale contents first
  accumulate_into(parts, dense.span());
  EXPECT_EQ(dense[0], 0.0f);
  EXPECT_EQ(dense[1], 2.5f);
  EXPECT_EQ(dense[2], 0.0f);
}

TEST(SparseTensor, AccumulateDuplicateIndicesWithinAndAcrossParts) {
  SparseTensor a, b;
  a.dense_size = b.dense_size = 4;
  a.indices = {1, 1, 1};  // duplicates inside one part accumulate in order
  a.values = {1.0f, 2.0f, 4.0f};
  b.indices = {1, 3};
  b.values = {8.0f, -1.0f};
  std::vector<SparseTensor> parts{a, b};
  Tensor sum = accumulate(parts, 4);
  EXPECT_EQ(sum[1], 15.0f);
  EXPECT_EQ(sum[3], -1.0f);
}

TEST(SparseTensor, AccumulateGuardsBadParts) {
  SparseTensor out_of_range;
  out_of_range.dense_size = 4;
  out_of_range.indices = {4};  // == dense_size: out of bounds
  out_of_range.values = {1.0f};
  std::vector<SparseTensor> parts{out_of_range};
  EXPECT_THROW(accumulate(parts, 4), CheckError);

  SparseTensor mismatched_len;
  mismatched_len.dense_size = 4;
  mismatched_len.indices = {0, 1};
  mismatched_len.values = {1.0f};
  parts = {mismatched_len};
  EXPECT_THROW(accumulate(parts, 4), CheckError);

  SparseTensor wrong_dense_size;
  wrong_dense_size.dense_size = 8;
  wrong_dense_size.indices = {0};
  wrong_dense_size.values = {1.0f};
  parts = {wrong_dense_size};
  EXPECT_THROW(accumulate(parts, 4), CheckError);
}

TEST(SparseTensor, AccumulatePartitionedMatchesSerialBitwise) {
  // Large accumulation with sorted, unsorted, duplicate-bearing, and empty
  // parts: the index-space-partitioned parallel path must reproduce the
  // serial per-part scatter-add bit for bit at any thread count.
  const size_t d = 1 << 16;
  Rng rng(91);
  std::vector<SparseTensor> parts;
  for (int p = 0; p < 6; ++p) {
    SparseTensor part;
    part.dense_size = d;
    const size_t nnz = 1500 + static_cast<size_t>(p) * 700;
    for (size_t i = 0; i < nnz; ++i) {
      part.indices.push_back(static_cast<uint32_t>(rng.uniform_index(d)));
      part.values.push_back(static_cast<float>(rng.normal(0.0, 1.0)));
    }
    if (p % 2 == 0) part.sort_by_index();  // mix sorted and unsorted parts
    parts.push_back(std::move(part));
  }
  parts.push_back(SparseTensor{});  // empty part
  parts.back().dense_size = d;

  Tensor reference(d);
  for (const auto& part : parts) part.scatter_add_into(reference.span());

  const int previous = parallel_threads();
  for (int threads : {1, 3, 8}) {
    set_parallel_threads(threads);
    Tensor sum = accumulate(parts, d);
    size_t mismatches = 0;
    for (size_t i = 0; i < d; ++i) {
      mismatches += sum[i] == reference[i] ? 0 : 1;
    }
    EXPECT_EQ(mismatches, 0u) << "threads=" << threads;
  }
  set_parallel_threads(previous);
}

// ------------------------------------------------------------ ExactTopK
TEST(ExactTopK, SelectsLargestMagnitudes) {
  Tensor x = Tensor::from({0.1f, -5.0f, 3.0f, -0.2f, 4.0f});
  SparseTensor s = exact_topk(x.span(), 2);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(s.indices, (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(s.values, (std::vector<float>{-5.0f, 4.0f}));
}

TEST(ExactTopK, KZeroIsEmpty) {
  Tensor x = Tensor::from({1.0f, 2.0f});
  EXPECT_EQ(exact_topk(x.span(), 0).nnz(), 0u);
}

TEST(ExactTopK, KLargerThanInputReturnsAll) {
  Tensor x = Tensor::from({1.0f, 2.0f});
  SparseTensor s = exact_topk(x.span(), 10);
  EXPECT_EQ(s.nnz(), 2u);
}

TEST(ExactTopK, TieBreakIsDeterministic) {
  Tensor x = Tensor::from({1.0f, -1.0f, 1.0f, -1.0f});
  SparseTensor a = exact_topk(x.span(), 2);
  SparseTensor b = exact_topk(x.span(), 2);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.indices, (std::vector<uint32_t>{0, 1}));  // lower index wins
}

TEST(ExactTopK, ThresholdMatchesSelection) {
  Tensor x = random_gradient(1000, 5);
  const size_t k = 50;
  const float thres = exact_topk_threshold(x.span(), k);
  EXPECT_EQ(x.count_abs_ge(thres), k);  // continuous values: no ties
}

TEST(ExactTopK, IndicesSortedAscending) {
  Tensor x = random_gradient(500, 6);
  SparseTensor s = exact_topk(x.span(), 100);
  EXPECT_TRUE(std::is_sorted(s.indices.begin(), s.indices.end()));
}

// ------------------------------------------------------------ MSTopK
TEST(MsTopK, ReturnsExactlyK) {
  MsTopK mstopk(30, 1);
  for (size_t d : {100u, 1000u, 4096u}) {
    Tensor x = random_gradient(d, d);
    for (size_t k : {1u, 10u, 99u}) {
      SparseTensor s = mstopk.compress(x.span(), k);
      EXPECT_EQ(s.nnz(), k) << "d=" << d << " k=" << k;
      EXPECT_TRUE(s.is_valid());
    }
  }
}

TEST(MsTopK, ValuesMatchInputAtIndices) {
  MsTopK mstopk(30, 2);
  Tensor x = random_gradient(2048, 7);
  SparseTensor s = mstopk.compress(x.span(), 64);
  for (size_t i = 0; i < s.nnz(); ++i) {
    EXPECT_EQ(s.values[i], x[s.indices[i]]);
  }
}

TEST(MsTopK, NoDuplicateIndices) {
  MsTopK mstopk(30, 3);
  Tensor x = random_gradient(4096, 9);
  SparseTensor s = mstopk.compress(x.span(), 200);
  std::set<uint32_t> unique(s.indices.begin(), s.indices.end());
  EXPECT_EQ(unique.size(), s.nnz());
}

TEST(MsTopK, CertainSetContainsAllAboveThres1) {
  // Every element with |x| >= thres1 must be selected (Alg. 1 line 25).
  MsTopK mstopk(30, 4);
  Tensor x = random_gradient(8192, 11);
  const size_t k = 82;
  SparseTensor s = mstopk.compress(x.span(), k);
  const auto& stats = mstopk.last_stats();
  ASSERT_GT(stats.thres1, 0.0f);
  std::set<uint32_t> chosen(s.indices.begin(), s.indices.end());
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::fabs(x[i]) >= stats.thres1) {
      EXPECT_TRUE(chosen.count(static_cast<uint32_t>(i)))
          << "certain element " << i << " missing";
    }
  }
}

TEST(MsTopK, AllSelectedAboveThres2) {
  // Nothing below the loose bracket can be selected.
  MsTopK mstopk(30, 5);
  Tensor x = random_gradient(8192, 13);
  const size_t k = 82;
  SparseTensor s = mstopk.compress(x.span(), k);
  const auto& stats = mstopk.last_stats();
  for (size_t i = 0; i < s.nnz(); ++i) {
    EXPECT_GE(std::fabs(s.values[i]) + 1e-7f, stats.thres2);
  }
}

TEST(MsTopK, ApproximationQualityWithManySamplings) {
  // With N = 30 samplings the selected mass should be close to exact top-k
  // mass for Gaussian gradients.
  MsTopK mstopk(30, 6);
  Tensor x = random_gradient(100000, 17);
  const size_t k = 1000;  // rho = 0.01
  SparseTensor approx = mstopk.compress(x.span(), k);
  SparseTensor exact = exact_topk(x.span(), k);
  double approx_mass = 0.0, exact_mass = 0.0;
  for (float v : approx.values) approx_mass += std::fabs(v);
  for (float v : exact.values) exact_mass += std::fabs(v);
  EXPECT_GT(approx_mass, 0.95 * exact_mass);
}

TEST(MsTopK, BracketCountsAreConsistent) {
  MsTopK mstopk(30, 7);
  Tensor x = random_gradient(50000, 19);
  const size_t k = 500;
  SparseTensor s = mstopk.compress(x.span(), k);
  const auto& stats = mstopk.last_stats();
  // Recorded bracket counts must match the data: thres1 selects k1 <= k
  // elements, thres2 selects k2 > k elements, and the brackets straddle the
  // exact threshold's count.
  EXPECT_EQ(x.count_abs_ge(stats.thres1), stats.k1);
  EXPECT_LE(stats.k1, k);
  EXPECT_EQ(x.count_abs_ge(stats.thres2), stats.k2);
  EXPECT_GE(stats.k2, k);
  // thres2 admits at least k elements, so it cannot exceed the exact k-th
  // magnitude.
  EXPECT_LE(stats.thres2, kth_magnitude(x, k) + 1e-7f);
}

TEST(MsTopK, KGreaterEqualDReturnsEverything) {
  MsTopK mstopk(30, 8);
  Tensor x = random_gradient(64, 23);
  SparseTensor s = mstopk.compress(x.span(), 64);
  EXPECT_EQ(s.nnz(), 64u);
  s = mstopk.compress(x.span(), 1000);
  EXPECT_EQ(s.nnz(), 64u);
}

TEST(MsTopK, AllZeroInputFallsBack) {
  MsTopK mstopk(30, 9);
  Tensor x(128);
  SparseTensor s = mstopk.compress(x.span(), 16);
  EXPECT_EQ(s.nnz(), 16u);
  EXPECT_TRUE(s.is_valid());
}

TEST(MsTopK, ConstantMagnitudeInputFallsBack) {
  MsTopK mstopk(30, 10);
  Tensor x(128);
  x.fill(3.0f);
  SparseTensor s = mstopk.compress(x.span(), 10);
  EXPECT_EQ(s.nnz(), 10u);
}

TEST(MsTopK, EmptyAndKZero) {
  MsTopK mstopk(30, 11);
  Tensor x = random_gradient(10, 29);
  EXPECT_EQ(mstopk.compress(x.span(), 0).nnz(), 0u);
  Tensor empty;
  EXPECT_EQ(mstopk.compress(empty.span(), 5).nnz(), 0u);
}

TEST(MsTopK, MoreSamplingsTightenBrackets) {
  Tensor x = random_gradient(100000, 31);
  const size_t k = 1000;
  MsTopK coarse(5, 12), fine(30, 12);
  coarse.compress(x.span(), k);
  const float coarse_gap =
      coarse.last_stats().thres1 - coarse.last_stats().thres2;
  fine.compress(x.span(), k);
  const float fine_gap = fine.last_stats().thres1 - fine.last_stats().thres2;
  EXPECT_LE(fine_gap, coarse_gap + 1e-7f);
}

TEST(MsTopK, HeavyTailedInput) {
  // Gradients with a few huge entries: the certain set catches them.
  Rng rng(37);
  Tensor x(10000);
  x.fill_normal(rng, 0.0f, 0.01f);
  for (size_t i = 0; i < 20; ++i) {
    x[i * 481] = (i % 2 ? 50.0f : -50.0f);
  }
  MsTopK mstopk(30, 13);
  SparseTensor s = mstopk.compress(x.span(), 100);
  EXPECT_EQ(s.nnz(), 100u);
  std::set<uint32_t> chosen(s.indices.begin(), s.indices.end());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(chosen.count(static_cast<uint32_t>(i * 481)));
  }
}

// ------------------------------------------------------------ DGC
TEST(DgcTopK, ReturnsAtMostK) {
  DgcTopK dgc(0.01, 3);
  Tensor x = random_gradient(50000, 41);
  SparseTensor s = dgc.compress(x.span(), 500);
  EXPECT_LE(s.nnz(), 500u);
  EXPECT_GE(s.nnz(), 400u);  // threshold estimation is close for Gaussians
  EXPECT_TRUE(s.is_valid());
}

TEST(DgcTopK, UsesAtLeastTwoTopKCalls) {
  DgcTopK dgc(0.01, 5);
  Tensor x = random_gradient(50000, 43);
  dgc.compress(x.span(), 500);
  EXPECT_GE(dgc.last_topk_calls(), 2);
}

TEST(DgcTopK, SelectionQualityNearExact) {
  DgcTopK dgc(0.05, 7);
  Tensor x = random_gradient(100000, 47);
  const size_t k = 1000;
  SparseTensor approx = dgc.compress(x.span(), k);
  SparseTensor exact = exact_topk(x.span(), k);
  double approx_mass = 0.0, exact_mass = 0.0;
  for (float v : approx.values) approx_mass += std::fabs(v);
  for (float v : exact.values) exact_mass += std::fabs(v);
  EXPECT_GT(approx_mass, 0.9 * exact_mass);
}

TEST(DgcTopK, SmallInputFallsBackToExact) {
  DgcTopK dgc(0.01, 9);
  Tensor x = Tensor::from({5.0f, -1.0f, 3.0f});
  SparseTensor s = dgc.compress(x.span(), 3);
  EXPECT_EQ(s.nnz(), 3u);
}

TEST(DgcTopK, ValuesMatchInput) {
  DgcTopK dgc(0.01, 11);
  Tensor x = random_gradient(20000, 53);
  SparseTensor s = dgc.compress(x.span(), 200);
  for (size_t i = 0; i < s.nnz(); ++i) {
    EXPECT_EQ(s.values[i], x[s.indices[i]]);
  }
}

// ------------------------------------------------------------ RandomK
TEST(RandomK, ExactlyKDistinctIndices) {
  RandomK rk(13);
  Tensor x = random_gradient(1000, 59);
  SparseTensor s = rk.compress(x.span(), 100);
  EXPECT_EQ(s.nnz(), 100u);
  std::set<uint32_t> unique(s.indices.begin(), s.indices.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_TRUE(s.is_valid());
}

TEST(RandomK, CoversSpaceOverManyDraws) {
  RandomK rk(17);
  Tensor x = random_gradient(64, 61);
  std::set<uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    SparseTensor s = rk.compress(x.span(), 4);
    seen.insert(s.indices.begin(), s.indices.end());
  }
  EXPECT_EQ(seen.size(), 64u);
}

// ------------------------------------------------------------ ThresholdK
TEST(ThresholdK, SelectsAllAboveThreshold) {
  ThresholdK tk(1.0f);
  Tensor x = Tensor::from({0.5f, -2.0f, 1.0f, 3.0f, -0.9f});
  SparseTensor s = tk.compress(x.span(), 0);
  EXPECT_EQ(s.indices, (std::vector<uint32_t>{1, 2, 3}));
}

// ------------------------------------------------------------ ErrorFeedback
TEST(ErrorFeedback, FirstApplyIsIdentity) {
  ErrorFeedback ef;
  Tensor g = Tensor::from({1.0f, 2.0f, 3.0f});
  Tensor original = g;
  ef.apply("w", g.span());
  for (size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], original[i]);
}

TEST(ErrorFeedback, ResidualIsUnsentRemainder) {
  ErrorFeedback ef;
  Tensor g = Tensor::from({1.0f, -4.0f, 3.0f, 0.5f});
  SparseTensor sent = exact_topk(g.span(), 2);  // picks -4 and 3
  ef.absorb("w", g.span(), sent);
  // Next gradient of zeros: apply returns exactly the residual.
  Tensor next(4);
  ef.apply("w", next.span());
  EXPECT_EQ(next[0], 1.0f);
  EXPECT_EQ(next[1], 0.0f);
  EXPECT_EQ(next[2], 0.0f);
  EXPECT_EQ(next[3], 0.5f);
}

TEST(ErrorFeedback, ClosureNoGradientIsLost) {
  // Invariant: sent_t + residual_t == grad_t + residual_{t-1}.
  ErrorFeedback ef;
  Rng rng(67);
  Tensor weights_sum(64);  // total mass delivered over time
  Tensor true_sum(64);     // total gradient mass produced
  for (int step = 0; step < 50; ++step) {
    Tensor g(64);
    g.fill_normal(rng, 0.0f, 1.0f);
    true_sum += g;
    ef.apply("w", g.span());
    SparseTensor sent = exact_topk(g.span(), 8);
    ef.absorb("w", g.span(), sent);
    Tensor delivered = sent.to_dense();
    weights_sum += delivered;
  }
  // delivered_total + final_residual == produced_total
  Tensor residual(64);
  ef.apply("w", residual.span());
  weights_sum += residual;
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(weights_sum[i], true_sum[i], 1e-4f);
  }
}

TEST(ErrorFeedback, IndependentKeys) {
  ErrorFeedback ef;
  Tensor a = Tensor::from({1.0f});
  Tensor b = Tensor::from({2.0f});
  SparseTensor none;
  none.dense_size = 1;
  ef.absorb("a", a.span(), none);
  ef.absorb("b", b.span(), none);
  EXPECT_EQ(ef.num_tensors(), 2u);
  Tensor ra(1), rb(1);
  ef.apply("a", ra.span());
  ef.apply("b", rb.span());
  EXPECT_EQ(ra[0], 1.0f);
  EXPECT_EQ(rb[0], 2.0f);
}

TEST(ErrorFeedback, FusedExchangeMatchesApplyAbsorb) {
  // apply_priming + absorb_primed must be bitwise identical to
  // apply + absorb under the shared-caller contract (grad untouched between
  // compensation and absorption).
  ErrorFeedback split, fused;
  Rng rng(71);
  Tensor split_grad(128), fused_grad(128);
  for (int step = 0; step < 10; ++step) {
    Tensor g(128);
    g.fill_normal(rng, 0.0f, 1.0f);
    std::copy(g.span().begin(), g.span().end(), split_grad.span().begin());
    std::copy(g.span().begin(), g.span().end(), fused_grad.span().begin());

    split.apply("w", split_grad.span());
    SparseTensor sent = exact_topk(split_grad.span(), 16);
    split.absorb("w", split_grad.span(), sent);

    fused.apply_priming("w", fused_grad.span());
    SparseTensor fused_sent = exact_topk(fused_grad.span(), 16);
    fused.absorb_primed("w", fused_sent);

    ASSERT_EQ(sent.indices, fused_sent.indices);
    for (size_t i = 0; i < 128; ++i) {
      ASSERT_EQ(split_grad[i], fused_grad[i]) << "step " << step;
    }
  }
  // Residual state agrees too: applying onto zeros surfaces it.
  Tensor split_res(128), fused_res(128);
  split.apply("w", split_res.span());
  fused.apply("w", fused_res.span());
  for (size_t i = 0; i < 128; ++i) EXPECT_EQ(split_res[i], fused_res[i]);
}

TEST(ErrorFeedback, AbsorbPrimedGuardsIndexRange) {
  ErrorFeedback ef;
  Tensor g(4);
  ef.apply_priming("w", g.span());
  SparseTensor bad;
  bad.dense_size = 4;
  bad.indices = {4};
  bad.values = {1.0f};
  EXPECT_THROW(ef.absorb_primed("w", bad), CheckError);
}

TEST(ErrorFeedback, ShapeChangeThrows) {
  ErrorFeedback ef;
  Tensor a(4);
  ef.apply("w", a.span());
  Tensor b(5);
  EXPECT_THROW(ef.apply("w", b.span()), CheckError);
}

TEST(ErrorFeedback, ResetClearsResiduals) {
  ErrorFeedback ef;
  Tensor g = Tensor::from({3.0f});
  SparseTensor none;
  none.dense_size = 1;
  ef.absorb("w", g.span(), none);
  EXPECT_GT(ef.residual_sq_norm(), 0.0);
  ef.reset();
  EXPECT_EQ(ef.num_tensors(), 0u);
  EXPECT_EQ(ef.residual_sq_norm(), 0.0);
}

// ------------------------------------------------------------ registry
TEST(Registry, CreatesAllKnownCompressors) {
  for (const char* name : {"exact_topk", "dgc", "mstopk", "random_k"}) {
    auto c = make_compressor(name, 1);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_compressor("nope"), CheckError);
}

// ---------------------------------------------- cross-operator properties
class CompressorPropertyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(CompressorPropertyTest, ExactlyKOnGaussian) {
  auto c = make_compressor(GetParam(), 99);
  Tensor x = random_gradient(10000, 71);
  for (size_t k : {1u, 10u, 100u, 1000u}) {
    SparseTensor s = c->compress(x.span(), k);
    if (std::string(GetParam()) == "dgc") {
      EXPECT_LE(s.nnz(), k);
      EXPECT_GE(s.nnz(), k * 8 / 10);
    } else {
      EXPECT_EQ(s.nnz(), k);
    }
    EXPECT_TRUE(s.is_valid());
  }
}

TEST_P(CompressorPropertyTest, ValuesAlwaysMatchInput) {
  auto c = make_compressor(GetParam(), 101);
  Tensor x = random_gradient(5000, 73);
  SparseTensor s = c->compress(x.span(), 128);
  for (size_t i = 0; i < s.nnz(); ++i) {
    EXPECT_EQ(s.values[i], x[s.indices[i]]);
  }
}

TEST_P(CompressorPropertyTest, DistinctIndices) {
  auto c = make_compressor(GetParam(), 103);
  Tensor x = random_gradient(5000, 79);
  SparseTensor s = c->compress(x.span(), 256);
  std::set<uint32_t> unique(s.indices.begin(), s.indices.end());
  EXPECT_EQ(unique.size(), s.nnz());
}

TEST_P(CompressorPropertyTest, DecompressRoundTripPreservesSelected) {
  auto c = make_compressor(GetParam(), 107);
  Tensor x = random_gradient(2000, 83);
  SparseTensor s = c->compress(x.span(), 100);
  Tensor dense = s.to_dense();
  for (size_t i = 0; i < s.nnz(); ++i) {
    EXPECT_EQ(dense[s.indices[i]], x[s.indices[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCompressors, CompressorPropertyTest,
                         ::testing::Values("exact_topk", "dgc", "mstopk",
                                           "random_k"));

}  // namespace
}  // namespace hitopk::compress
