// Schedule-engine vs legacy-loop equivalence for every converted collective:
// identical port clocks (EXPECT_DOUBLE_EQ, timing-only and functional) and
// bitwise-identical buffers (byte compare, so -0.0 vs 0.0 or NaN payload
// differences cannot hide).  Shapes include uneven chunk_range remainders,
// single-rank groups, and multi-chunk tree pipelining.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "collectives/blueconnect.h"
#include "collectives/elastic.h"
#include "collectives/gtopk.h"
#include "collectives/hier_allreduce.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/param_server.h"
#include "collectives/ring.h"
#include "collectives/schedule.h"
#include "collectives/torus2d.h"
#include "collectives/tree_allreduce.h"
#include "compress/error_feedback.h"
#include "compress/exact_topk.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::coll {
namespace {

using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

// Restores the default engine path when a test exits (also on failure).
class PathGuard {
 public:
  explicit PathGuard(CollectivePath path) { set_collective_path(path); }
  ~PathGuard() { set_collective_path(CollectivePath::kSchedule); }
};

std::vector<Tensor> random_buffers(int world, size_t elems, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> buffers;
  for (int r = 0; r < world; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    buffers.push_back(std::move(t));
  }
  return buffers;
}

RankData spans_of(std::vector<Tensor>& buffers) {
  RankData spans;
  for (auto& b : buffers) spans.push_back(b.span());
  return spans;
}

void expect_bitwise_equal(const std::vector<Tensor>& a,
                          const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    ASSERT_EQ(std::memcmp(a[r].data(), b[r].data(),
                          a[r].size() * sizeof(float)),
              0)
        << "buffers of rank " << r << " differ";
  }
}

// Runs `fn(cluster, data)` under both paths on identical inputs and checks
// clocks + buffers match.  fn returns the completion time.
template <typename Fn>
void check_equivalence(const Topology& topo, size_t elems, uint64_t seed,
                       Fn&& fn) {
  // Functional.
  std::vector<Tensor> buf_sched = random_buffers(topo.world_size(), elems, seed);
  std::vector<Tensor> buf_legacy = buf_sched;
  double t_sched, t_legacy;
  {
    PathGuard guard(CollectivePath::kSchedule);
    Cluster cluster(topo);
    t_sched = fn(cluster, spans_of(buf_sched));
  }
  {
    PathGuard guard(CollectivePath::kLegacy);
    Cluster cluster(topo);
    t_legacy = fn(cluster, spans_of(buf_legacy));
  }
  EXPECT_DOUBLE_EQ(t_sched, t_legacy) << "functional clocks diverge";
  expect_bitwise_equal(buf_sched, buf_legacy);

  // Timing-only parity of the same call.
  double t_sched_empty, t_legacy_empty;
  {
    PathGuard guard(CollectivePath::kSchedule);
    Cluster cluster(topo);
    t_sched_empty = fn(cluster, RankData{});
  }
  {
    PathGuard guard(CollectivePath::kLegacy);
    Cluster cluster(topo);
    t_legacy_empty = fn(cluster, RankData{});
  }
  EXPECT_DOUBLE_EQ(t_sched_empty, t_legacy_empty)
      << "timing-only clocks diverge";
}

// ------------------------------------------------------------ ring legs
class RingEquivalenceTest
    : public ::testing::TestWithParam<std::pair<int, size_t>> {};

TEST_P(RingEquivalenceTest, ReduceScatter) {
  const auto [g, elems] = GetParam();
  const Topology topo = fabric(1, g);
  check_equivalence(topo, elems, 42, [&](Cluster& c, const RankData& data) {
    return ring_reduce_scatter(c, world_group(c.topology()), data, elems, coll::WireDtype::kFp32, 0.5);
  });
}

TEST_P(RingEquivalenceTest, AllGather) {
  const auto [g, elems] = GetParam();
  const Topology topo = fabric(1, g);
  check_equivalence(topo, elems, 43, [&](Cluster& c, const RankData& data) {
    return ring_allgather(c, world_group(c.topology()), data, elems, coll::WireDtype::kFp16, 0.0);
  });
}

TEST_P(RingEquivalenceTest, AllReduce) {
  const auto [g, elems] = GetParam();
  const Topology topo = fabric(1, g);
  check_equivalence(topo, elems, 44, [&](Cluster& c, const RankData& data) {
    return ring_allreduce(c, world_group(c.topology()), data, elems, coll::WireDtype::kFp32, 0.0);
  });
}

// Group sizes x element counts with ragged remainders (67 % g != 0 for most
// g) and the degenerate single-rank group.
INSTANTIATE_TEST_SUITE_P(
    Shapes, RingEquivalenceTest,
    ::testing::Values(std::pair{1, size_t{64}}, std::pair{2, size_t{67}},
                      std::pair{3, size_t{67}}, std::pair{4, size_t{64}},
                      std::pair{5, size_t{129}}, std::pair{8, size_t{1000}},
                      std::pair{7, size_t{3}}));

TEST(RingEquivalence, AllReduceMultiTwoCrossNodeStreams) {
  const Topology topo = fabric(3, 2);
  const size_t elems = 101;
  std::vector<Group> groups{cross_node_group(topo, 0),
                            cross_node_group(topo, 1)};
  auto run = [&](CollectivePath path, std::vector<Tensor>& buffers) {
    PathGuard guard(path);
    Cluster cluster(topo);
    std::vector<RankData> data(groups.size());
    for (size_t q = 0; q < groups.size(); ++q) {
      for (int rank : groups[q]) {
        data[q].push_back(buffers[static_cast<size_t>(rank)].span());
      }
    }
    return ring_allreduce_multi(cluster, groups, data, elems, coll::WireDtype::kFp32, 0.25);
  };
  std::vector<Tensor> buf_sched = random_buffers(topo.world_size(), elems, 7);
  std::vector<Tensor> buf_legacy = buf_sched;
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule, buf_sched),
                   run(CollectivePath::kLegacy, buf_legacy));
  expect_bitwise_equal(buf_sched, buf_legacy);
}

TEST(RingEquivalence, AllGatherBytesVariablePayloads) {
  const Topology topo = fabric(2, 3);
  auto run = [&](CollectivePath path) {
    PathGuard guard(path);
    Cluster cluster(topo);
    return ring_allgather_bytes(cluster, world_group(topo),
                                {100, 2000, 5, 40, 999, 1}, 0.0, 1e-5);
  };
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule),
                   run(CollectivePath::kLegacy));
}

// ------------------------------------------------ ring_allgather_bytes guards
// Regression tests for the g == 0 / g == 1 guards: zero-size groups and
// single-rank groups carry no steps and must return the start time instead
// of indexing payload_bytes[q][origin] with origin computed modulo zero.
TEST(RingAllGatherBytes, SingleRankGroupIsFree) {
  const Topology topo = fabric(1, 1);
  Cluster cluster(topo);
  EXPECT_DOUBLE_EQ(
      ring_allgather_bytes(cluster, {0}, {1000000}, 1.5, 1e-3), 1.5);
  PathGuard guard(CollectivePath::kLegacy);
  EXPECT_DOUBLE_EQ(
      ring_allgather_bytes(cluster, {0}, {1000000}, 1.5, 1e-3), 1.5);
}

TEST(RingAllGatherBytes, EmptyGroupsAndPayloadsAreFree) {
  const Topology topo = fabric(2, 2);
  Cluster cluster(topo);
  const std::vector<Group> groups{{}, {}};
  const std::vector<std::vector<size_t>> payloads{{}, {}};
  EXPECT_DOUBLE_EQ(
      ring_allgather_bytes_multi(cluster, groups, payloads, 2.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(ring_allgather_bytes(cluster, {}, {}, 3.0, 0.0), 3.0);
}

// ------------------------------------------------------------ tree
class TreeEquivalenceTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TreeEquivalenceTest, AllReduce) {
  const auto [m, n] = GetParam();
  const Topology topo = fabric(m, n);
  const size_t elems = 203;  // odd: the two tree halves differ in size
  TreeOptions options;
  options.chunk_bytes = 128;  // force multi-chunk pipelining
  check_equivalence(topo, elems, 50, [&](Cluster& c, const RankData& data) {
    return tree_allreduce(c, world_group(c.topology()), data, elems, options,
                          0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, TreeEquivalenceTest,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 1},
                                           std::pair{2, 4}, std::pair{3, 3},
                                           std::pair{5, 2}, std::pair{4, 4}));

// ------------------------------------------------------------ hier
TEST(HierEquivalence, BreakdownAndBuffers) {
  const Topology topo = fabric(3, 4);
  const size_t elems = 77;
  auto run = [&](CollectivePath path, std::vector<Tensor>* buffers) {
    PathGuard guard(path);
    Cluster cluster(topo);
    RankData data;
    if (buffers != nullptr) data = spans_of(*buffers);
    return hier_allreduce(cluster, data, elems, coll::WireDtype::kFp32, 0.125);
  };
  std::vector<Tensor> buf_sched = random_buffers(topo.world_size(), elems, 60);
  std::vector<Tensor> buf_legacy = buf_sched;
  const auto s = run(CollectivePath::kSchedule, &buf_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy);
  EXPECT_DOUBLE_EQ(s.intra_reduce, l.intra_reduce);
  EXPECT_DOUBLE_EQ(s.inter_allreduce, l.inter_allreduce);
  EXPECT_DOUBLE_EQ(s.intra_broadcast, l.intra_broadcast);
  EXPECT_DOUBLE_EQ(s.total, l.total);
  expect_bitwise_equal(buf_sched, buf_legacy);
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule, nullptr).total,
                   run(CollectivePath::kLegacy, nullptr).total);
}

// ------------------------------------------------------------ torus2d
class TorusEquivalenceTest
    : public ::testing::TestWithParam<std::pair<std::pair<int, int>, size_t>> {
};

TEST_P(TorusEquivalenceTest, BreakdownAndBuffers) {
  const auto [shape, elems] = GetParam();
  const auto [m, n] = shape;
  const Topology topo = fabric(m, n);
  auto run = [&](CollectivePath path, std::vector<Tensor>* buffers) {
    PathGuard guard(path);
    Cluster cluster(topo);
    RankData data;
    if (buffers != nullptr) data = spans_of(*buffers);
    return torus2d_allreduce(cluster, data, elems, coll::WireDtype::kFp32, 0.0);
  };
  std::vector<Tensor> buf_sched =
      random_buffers(topo.world_size(), elems, 70 + elems);
  std::vector<Tensor> buf_legacy = buf_sched;
  const auto s = run(CollectivePath::kSchedule, &buf_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy);
  EXPECT_DOUBLE_EQ(s.reduce_scatter, l.reduce_scatter);
  EXPECT_DOUBLE_EQ(s.inter_allreduce, l.inter_allreduce);
  EXPECT_DOUBLE_EQ(s.intra_allgather, l.intra_allgather);
  EXPECT_DOUBLE_EQ(s.total, l.total);
  expect_bitwise_equal(buf_sched, buf_legacy);
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule, nullptr).total,
                   run(CollectivePath::kLegacy, nullptr).total);
}

// 96 divides evenly by every n here (the one-schedule path); 97 exercises
// the ragged functional fallback (per-stream sequential phase 2).
INSTANTIATE_TEST_SUITE_P(
    Shapes, TorusEquivalenceTest,
    ::testing::Values(std::pair{std::pair{2, 4}, size_t{96}},
                      std::pair{std::pair{2, 4}, size_t{97}},
                      std::pair{std::pair{3, 3}, size_t{97}},
                      std::pair{std::pair{4, 2}, size_t{64}},
                      std::pair{std::pair{1, 4}, size_t{97}}));

// ------------------------------------------------------------ param server
TEST(ParamServerEquivalence, BreakdownAndBuffers) {
  const Topology topo = fabric(3, 2);
  const size_t elems = 101;
  auto run = [&](CollectivePath path, std::vector<Tensor>* buffers) {
    PathGuard guard(path);
    Cluster cluster(topo);
    RankData data;
    if (buffers != nullptr) data = spans_of(*buffers);
    return param_server_allreduce(cluster, data, elems, coll::WireDtype::kFp32, 0.0);
  };
  std::vector<Tensor> buf_sched = random_buffers(topo.world_size(), elems, 80);
  std::vector<Tensor> buf_legacy = buf_sched;
  const auto s = run(CollectivePath::kSchedule, &buf_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy);
  EXPECT_DOUBLE_EQ(s.push, l.push);
  EXPECT_DOUBLE_EQ(s.pull, l.pull);
  EXPECT_DOUBLE_EQ(s.total, l.total);
  expect_bitwise_equal(buf_sched, buf_legacy);
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule, nullptr).total,
                   run(CollectivePath::kLegacy, nullptr).total);
}

// ------------------------------------------------------------ HiTopKComm
TEST(HiTopKEquivalence, FunctionalWithErrorFeedback) {
  const Topology topo = fabric(2, 4);
  const size_t elems = 250;  // ragged shards (250 % 4 != 0)
  auto run = [&](CollectivePath path, std::vector<Tensor>* buffers,
                 compress::ErrorFeedback* ef) {
    PathGuard guard(path);
    Cluster cluster(topo);
    RankData data;
    if (buffers != nullptr) data = spans_of(*buffers);
    HiTopKOptions options;
    options.density = 0.05;
    options.seed = 99;
    options.error_feedback = ef;
    return hitopk_comm(cluster, data, elems, options, 0.0);
  };
  std::vector<Tensor> buf_sched = random_buffers(topo.world_size(), elems, 90);
  std::vector<Tensor> buf_legacy = buf_sched;
  compress::ErrorFeedback ef_sched, ef_legacy;
  const auto s = run(CollectivePath::kSchedule, &buf_sched, &ef_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy, &ef_legacy);
  EXPECT_DOUBLE_EQ(s.reduce_scatter, l.reduce_scatter);
  EXPECT_DOUBLE_EQ(s.inter_allgather, l.inter_allgather);
  EXPECT_DOUBLE_EQ(s.intra_allgather, l.intra_allgather);
  EXPECT_DOUBLE_EQ(s.total, l.total);
  expect_bitwise_equal(buf_sched, buf_legacy);
  EXPECT_DOUBLE_EQ(ef_sched.residual_sq_norm(), ef_legacy.residual_sq_norm());
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule, nullptr, nullptr).total,
                   run(CollectivePath::kLegacy, nullptr, nullptr).total);
}

// ------------------------------------------------------------ gTop-k
// Clock parity and bitwise buffers across power-of-two and folded
// (non-power-of-two) worlds, with error-feedback state carried across two
// successive calls — the engine path also swaps the dense-allocating merge
// for the fused workspace-backed one, so this pins that rewrite too.
class GtopkEquivalenceTest
    : public ::testing::TestWithParam<std::pair<std::pair<int, int>, size_t>> {
};

TEST_P(GtopkEquivalenceTest, TwoCallsWithErrorFeedback) {
  const auto [shape, elems] = GetParam();
  const auto [m, n] = shape;
  const Topology topo = fabric(m, n);
  auto run = [&](CollectivePath path, std::vector<Tensor>* buffers,
                 compress::ErrorFeedback* ef) {
    PathGuard guard(path);
    Cluster cluster(topo);
    GtopkOptions options;
    options.density = 0.04;
    options.error_feedback = ef;
    RankData data;
    if (buffers != nullptr) data = spans_of(*buffers);
    const auto first = coll::gtopk_comm(cluster, data, elems, options, 0.0);
    // Second call continues from the first's residuals (functional mode).
    const auto second =
        coll::gtopk_comm(cluster, data, elems, options, first.total);
    return std::pair{first, second};
  };
  std::vector<Tensor> buf_sched =
      random_buffers(topo.world_size(), elems, 300 + elems);
  std::vector<Tensor> buf_legacy = buf_sched;
  compress::ErrorFeedback ef_sched, ef_legacy;
  const auto s = run(CollectivePath::kSchedule, &buf_sched, &ef_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy, &ef_legacy);
  EXPECT_DOUBLE_EQ(s.first.total, l.first.total);
  EXPECT_DOUBLE_EQ(s.second.total, l.second.total);
  EXPECT_EQ(s.first.rounds, l.first.rounds);
  EXPECT_EQ(s.second.final_nnz, l.second.final_nnz);
  expect_bitwise_equal(buf_sched, buf_legacy);
  EXPECT_DOUBLE_EQ(ef_sched.residual_sq_norm(), ef_legacy.residual_sq_norm());
  // Timing-only parity of the same shapes.
  const auto s_empty = run(CollectivePath::kSchedule, nullptr, nullptr);
  const auto l_empty = run(CollectivePath::kLegacy, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(s_empty.second.total, l_empty.second.total);
}

// Power-of-two (2x2, 2x4), folded worlds (3x1, 3x2, 3x4), an uneven ragged
// element count, and a folded world on an *uneven* node topology below.
INSTANTIATE_TEST_SUITE_P(
    Shapes, GtopkEquivalenceTest,
    ::testing::Values(std::pair{std::pair{2, 2}, size_t{200}},
                      std::pair{std::pair{2, 4}, size_t{257}},
                      std::pair{std::pair{3, 1}, size_t{100}},
                      std::pair{std::pair{3, 2}, size_t{331}},
                      std::pair{std::pair{3, 4}, size_t{97}}));

TEST(GtopkEquivalence, UnevenNodeTopology) {
  // 3 + 1 + 2 GPUs: world size 6 folds (q = 4, rem = 2) and the NIC port
  // layout is asymmetric across nodes.
  const Topology topo(std::vector<int>{3, 1, 2}, LinkParams{1e-6, 1e-9},
                      LinkParams{1e-5, 1e-8});
  const size_t elems = 150;
  auto run = [&](CollectivePath path, std::vector<Tensor>* buffers) {
    PathGuard guard(path);
    Cluster cluster(topo);
    GtopkOptions options;
    options.density = 0.05;
    RankData data;
    if (buffers != nullptr) data = spans_of(*buffers);
    return coll::gtopk_comm(cluster, data, elems, options, 0.25);
  };
  std::vector<Tensor> buf_sched = random_buffers(topo.world_size(), elems, 44);
  std::vector<Tensor> buf_legacy = buf_sched;
  const auto s = run(CollectivePath::kSchedule, &buf_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy);
  EXPECT_DOUBLE_EQ(s.total, l.total);
  EXPECT_EQ(s.rounds, 4u);  // q = 4: fold + 2 + unfold
  expect_bitwise_equal(buf_sched, buf_legacy);
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule, nullptr).total,
                   run(CollectivePath::kLegacy, nullptr).total);
}

// ------------------------------------------------------------ NaiveAG
TEST(NaiveAgEquivalence, RaggedSparsePayloads) {
  const Topology topo = fabric(3, 2);
  const size_t elems = 211;
  // Per-rank top-k with *different* k so the ring payloads are ragged.
  std::vector<Tensor> grads = random_buffers(topo.world_size(), elems, 91);
  std::vector<compress::SparseTensor> sparse;
  for (size_t r = 0; r < grads.size(); ++r) {
    sparse.push_back(compress::exact_topk(grads[r].span(), 3 + 5 * r));
  }
  auto run = [&](CollectivePath path, std::vector<Tensor>* buffers) {
    PathGuard guard(path);
    Cluster cluster(topo);
    RankData data;
    if (buffers != nullptr) data = spans_of(*buffers);
    return coll::naive_sparse_allgather(cluster, sparse, data, elems, 2,
                                        1e-4, 0.5);
  };
  std::vector<Tensor> buf_sched = random_buffers(topo.world_size(), elems, 92);
  std::vector<Tensor> buf_legacy = buf_sched;
  const auto s = run(CollectivePath::kSchedule, &buf_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy);
  EXPECT_DOUBLE_EQ(s.total, l.total);
  EXPECT_DOUBLE_EQ(s.allgather, l.allgather);
  EXPECT_DOUBLE_EQ(s.accumulate, l.accumulate);
  expect_bitwise_equal(buf_sched, buf_legacy);
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule, nullptr).total,
                   run(CollectivePath::kLegacy, nullptr).total);
}

TEST(NaiveAgEquivalence, UnevenNodeTopologyTimingParity) {
  const Topology topo(std::vector<int>{2, 4, 1}, LinkParams{1e-6, 1e-9},
                      LinkParams{1e-5, 1e-8});
  auto run = [&](CollectivePath path) {
    PathGuard guard(path);
    Cluster cluster(topo);
    return coll::naive_sparse_allgather_time(cluster, 64, 2, 1e-4, 0.0).total;
  };
  EXPECT_DOUBLE_EQ(run(CollectivePath::kSchedule),
                   run(CollectivePath::kLegacy));
}

// Guard class from PR 4's ring_allgather_bytes_multi g == 0 fix: degenerate
// NaiveAG inputs must not crash and must cost only the local accumulate.
TEST(NaiveAgGuards, SingleRankWorldIsGatherFree) {
  const Topology topo = fabric(1, 1);
  Cluster cluster(topo);
  Tensor grad(50);
  grad.fill(2.0f);
  std::vector<compress::SparseTensor> sparse{
      compress::exact_topk(grad.span(), 5)};
  Tensor out(50);
  RankData data{out.span()};
  const auto r =
      coll::naive_sparse_allgather(cluster, sparse, data, 50, 4, 1e-3, 0.0);
  EXPECT_DOUBLE_EQ(r.allgather, 0.0);  // no ring steps for one rank
  EXPECT_DOUBLE_EQ(r.accumulate, 1e-3);
  EXPECT_DOUBLE_EQ(r.total, 1e-3);
  float sum = 0.0f;
  for (size_t i = 0; i < 50; ++i) sum += out[i];
  EXPECT_FLOAT_EQ(sum, 10.0f);  // the rank's own top-5 of a constant tensor
  EXPECT_DOUBLE_EQ(
      coll::naive_sparse_allgather_time(cluster, 100, 4, 0.0, 2.0).total, 0.0);
}

TEST(NaiveAgGuards, EmptySelectionsRideAsLatencyOnlyMessages) {
  const Topology topo = fabric(2, 2);
  const size_t elems = 40;
  // k == 0 everywhere: zero payload bytes, but the ring steps still pay
  // alpha, identically on both paths.
  std::vector<compress::SparseTensor> sparse(4);
  for (auto& s : sparse) s.dense_size = elems;
  std::vector<Tensor> buffers = random_buffers(4, elems, 7);
  auto run = [&](CollectivePath path, std::vector<Tensor>* bufs) {
    PathGuard guard(path);
    Cluster cluster(topo);
    RankData data;
    if (bufs != nullptr) data = spans_of(*bufs);
    return coll::naive_sparse_allgather(cluster, sparse, data, elems, 4, 0.0,
                                        0.0);
  };
  std::vector<Tensor> buf_sched = buffers;
  std::vector<Tensor> buf_legacy = buffers;
  const auto s = run(CollectivePath::kSchedule, &buf_sched);
  const auto l = run(CollectivePath::kLegacy, &buf_legacy);
  EXPECT_DOUBLE_EQ(s.total, l.total);
  EXPECT_GT(s.allgather, 0.0);  // alpha per step survives
  for (const auto& t : buf_sched) {
    for (size_t i = 0; i < elems; ++i) ASSERT_EQ(t[i], 0.0f);  // empty sum
  }
  expect_bitwise_equal(buf_sched, buf_legacy);
}

TEST(NaiveAgGuards, EmptyRankDataIsTimingOnly) {
  const Topology topo = fabric(2, 2);
  Cluster cluster(topo);
  std::vector<compress::SparseTensor> sparse(4);
  for (auto& s : sparse) s.dense_size = 16;
  const auto r =
      coll::naive_sparse_allgather(cluster, sparse, RankData{}, 16, 4, 0.0,
                                   0.0);
  EXPECT_GT(r.total, 0.0);  // clocks advance, no data is touched
}

// ------------------------------------------------------------ BlueConnect
// BlueConnect has no legacy twin: with factors = {P} its recorded schedule
// must be *identical* to ring_allreduce's (clock and bitwise), which in
// turn is pinned against the legacy loops above — that chain anchors the
// whole decomposition.
TEST(BlueConnect, SingleStageIsExactlyFlatRing) {
  const Topology topo = fabric(3, 2);
  const size_t elems = 151;
  std::vector<Tensor> buf_bc = random_buffers(topo.world_size(), elems, 120);
  std::vector<Tensor> buf_ring = buf_bc;
  Cluster c_bc(topo), c_ring(topo);
  BlueConnectOptions options;
  options.factors = {6};
  options.wire = coll::WireDtype::kFp32;
  const auto bc =
      blueconnect_allreduce(c_bc, spans_of(buf_bc), elems, options, 0.75);
  const double ring = ring_allreduce(c_ring, world_group(topo),
                                     spans_of(buf_ring), elems, coll::WireDtype::kFp32, 0.75);
  // Same expression shape on both sides (finish - start), so the doubles
  // must be identical, not merely close.
  EXPECT_DOUBLE_EQ(bc.total, ring - 0.75);
  expect_bitwise_equal(buf_bc, buf_ring);
  // Timing-only too.
  Cluster c_bc2(topo), c_ring2(topo);
  EXPECT_DOUBLE_EQ(
      blueconnect_allreduce(c_bc2, {}, elems, options, 0.0).total,
      ring_allreduce(c_ring2, world_group(topo), {}, elems, coll::WireDtype::kFp32, 0.0));
}

class BlueConnectShapeTest
    : public ::testing::TestWithParam<
          std::pair<std::vector<int>, std::pair<std::pair<int, int>, size_t>>> {
};

TEST_P(BlueConnectShapeTest, AllRanksConvergeToTheSum) {
  const auto [factors, rest] = GetParam();
  const auto [shape, elems] = rest;
  const auto [m, n] = shape;
  const Topology topo = fabric(m, n);
  std::vector<Tensor> buffers =
      random_buffers(topo.world_size(), elems, 130 + elems);
  std::vector<double> expected(elems, 0.0);
  for (const auto& b : buffers) {
    for (size_t i = 0; i < elems; ++i) expected[i] += b[i];
  }
  Cluster cluster(topo);
  BlueConnectOptions options;
  options.factors = factors;
  const auto r =
      blueconnect_allreduce(cluster, spans_of(buffers), elems, options, 0.0);
  EXPECT_EQ(r.stages, options.factors.empty()
                          ? (m == 1 || n == 1 ? 1u : 2u)
                          : options.factors.size());
  EXPECT_GT(r.total, 0.0);
  EXPECT_DOUBLE_EQ(r.total, r.reduce_scatter + r.allgather);
  for (size_t rank = 0; rank < buffers.size(); ++rank) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(buffers[rank][i], buffers[0][i]) << rank << "," << i;
      ASSERT_NEAR(buffers[rank][i], expected[i],
                  1e-4 * std::max(1.0, std::abs(expected[i])));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlueConnectShapeTest,
    ::testing::Values(
        // Auto-derived {n, m} on a ragged element count.
        std::pair{std::vector<int>{}, std::pair{std::pair{3, 2}, size_t{157}}},
        std::pair{std::vector<int>{}, std::pair{std::pair{4, 4}, size_t{96}}},
        // Explicit three-stage rack-aware factorization {n, pod, pods}.
        std::pair{std::vector<int>{2, 2, 2},
                  std::pair{std::pair{4, 2}, size_t{203}}},
        std::pair{std::vector<int>{4, 2, 2},
                  std::pair{std::pair{4, 4}, size_t{129}}},
        // Factor-1 stages are legal no-ops.
        std::pair{std::vector<int>{1, 6, 1},
                  std::pair{std::pair{3, 2}, size_t{64}}}));

TEST(BlueConnect, RejectsFactorizationMismatch) {
  const Topology topo = fabric(2, 2);
  Cluster cluster(topo);
  BlueConnectOptions options;
  options.factors = {3};
  // A bad factorization is a recoverable runtime configuration, not a
  // broken invariant: the elastic layer catches ConfigError and re-derives.
  EXPECT_THROW(blueconnect_allreduce(cluster, {}, 10, options, 0.0),
               ConfigError);
}

// ------------------------------------------------------- engine unit tests
TEST(Schedule, SyncCollapseAndMarks) {
  const Topology topo = fabric(1, 2);
  Cluster cluster(topo);
  Schedule sched;
  const uint32_t slots = sched.add_slots(2);
  sched.send(0, 1, 1000, slots, slots + 1);
  sched.end_step();
  sched.sync(/*collapse=*/false);  // mark only: slot 0 still at start
  sched.send(1, 0, 1000, slots + 1, slots);
  sched.end_step();
  sched.sync(/*collapse=*/true);
  sched.send(0, 1, 1000, slots, slots + 1);
  const auto timing = sched.run_timing(cluster, 1.0);
  ASSERT_EQ(timing.sync_times.size(), 2u);
  // First hop: 1e-6 latency + 1000 * 1e-9 s/B.
  const double hop = 1e-6 + 1000e-9;
  EXPECT_DOUBLE_EQ(timing.sync_times[0], 1.0 + hop);
  EXPECT_DOUBLE_EQ(timing.sync_times[1], 1.0 + 2 * hop);
  EXPECT_DOUBLE_EQ(timing.finish, 1.0 + 3 * hop);
}

TEST(Schedule, DataPassKeepsPerDestinationOrder) {
  // Three reduces into one destination must apply in recorded order;
  // float addition is not associative, so order shows in the bits.
  Tensor a(1), b(1), c(1), dst(1);
  a[0] = 1e30f;
  b[0] = -1e30f;
  c[0] = 1.0f;
  dst[0] = 0.0f;
  Schedule sched;
  const uint32_t ba = sched.add_buffer(a.span());
  const uint32_t bb = sched.add_buffer(b.span());
  const uint32_t bc = sched.add_buffer(c.span());
  const uint32_t bd = sched.add_buffer(dst.span());
  sched.reduce(ba, bd, 0, 1);
  sched.reduce(bb, bd, 0, 1);
  sched.reduce(bc, bd, 0, 1);
  sched.run_data();
  // ((0 + 1e30) - 1e30) + 1 == 1; any other order collapses to 0.
  EXPECT_EQ(dst[0], 1.0f);
}

// --------------------------------------------------- elastic fault rescale
// The acceptance sweep: a preemption injected at *every* step index of the
// replayed schedule must never crash — it surfaces as a structured abort,
// and the elastic retry completes on the surviving world with buffers
// bitwise identical to a fresh run at that world (aborted attempts never
// run the data pass, so the retry consumes pristine inputs).  The sweep
// drives preemption times over a dense grid spanning the fault-free replay
// and asserts the observed abort steps cover the schedule gaplessly.
namespace elastic_sweep {

constexpr int kDeadRank = 1;
constexpr int kGridPoints = 120;

// Fresh-run oracle at the surviving world, mirroring the elastic layer's
// per-algorithm rebuild (ring builders; BlueConnect with re-derived
// factors; gTop-k fold/unfold).
void run_fresh(ElasticAlgorithm algorithm, const Topology& topo,
               const RankData& data, size_t elems) {
  Cluster cluster(topo);
  switch (algorithm) {
    case ElasticAlgorithm::kRing:
      ring_allreduce(cluster, world_group(topo), data, elems, coll::WireDtype::kFp32, 0.0);
      break;
    case ElasticAlgorithm::kBlueConnect: {
      BlueConnectOptions options;
      if (!topo.uniform()) options.factors = {topo.world_size()};
      blueconnect_allreduce(cluster, data, elems, options, 0.0);
      break;
    }
    case ElasticAlgorithm::kGtopk: {
      GtopkOptions options;
      options.density = 0.05;
      gtopk_comm(cluster, data, elems, options, 0.0);
      break;
    }
  }
}

// Runs the sweep for one algorithm; fills the set of abort steps seen.
// (void return: gtest's fatal ASSERT_* macros require it.)
void sweep(ElasticAlgorithm algorithm, const Topology& topo, size_t elems,
           std::vector<int>* abort_steps_out) {
  const int world = topo.world_size();
  ElasticOptions options;
  options.algorithm = algorithm;
  options.gtopk.density = 0.05;
  options.reschedule_seconds = 0.5;

  // Fault-free pass pins the sweep window and the baseline behavior.
  const simnet::FaultPlan no_faults;
  const auto clean = elastic_allreduce(topo, no_faults, {}, elems, options,
                                       0.0);
  EXPECT_TRUE(clean.completed);
  EXPECT_EQ(clean.surviving_world, world);
  EXPECT_EQ(clean.rescales, 0);
  const double finish = clean.finish;
  EXPECT_GT(finish, 0.0);

  // Dead at start (t = 0): the initial survivor filter excludes the rank
  // before any send, so the single attempt runs at p - 1 and its buffers
  // match the fresh shrunk-world oracle bitwise.
  {
    simnet::FaultPlan plan;
    plan.preempt(kDeadRank, 0.0);
    std::vector<Tensor> buffers = random_buffers(world, elems, 499);
    const auto result =
        elastic_allreduce(topo, plan, spans_of(buffers), elems, options, 0.0);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.surviving_world, world - 1);
    EXPECT_EQ(result.attempts.size(), 1u);
    EXPECT_EQ(result.rescales, 0);
    const SurvivorWorld survivor = shrink_topology(topo, {kDeadRank});
    std::vector<Tensor> fresh = random_buffers(world, elems, 499);
    RankData fresh_data;
    for (const int old_rank : survivor.old_rank) {
      fresh_data.push_back(fresh[static_cast<size_t>(old_rank)].span());
    }
    run_fresh(algorithm, survivor.topology, fresh_data, elems);
    for (const int old_rank : survivor.old_rank) {
      const auto r = static_cast<size_t>(old_rank);
      ASSERT_EQ(std::memcmp(buffers[r].data(), fresh[r].data(),
                            elems * sizeof(float)),
                0)
          << "dead-at-start survivor (old rank " << old_rank << ")";
    }
  }

  std::vector<int> abort_steps;
  for (int i = 0; i < kGridPoints; ++i) {
    const double t =
        finish * (static_cast<double>(i) + 0.5) / kGridPoints;
    simnet::FaultPlan plan;
    plan.preempt(kDeadRank, t);
    plan.set_detection_timeout(0.1);

    std::vector<Tensor> buffers =
        random_buffers(world, elems, 500 + static_cast<uint64_t>(i));
    const auto result =
        elastic_allreduce(topo, plan, spans_of(buffers), elems, options, 0.0);
    ASSERT_TRUE(result.completed);
    if (result.attempts.front().outcome.aborted()) {
      // Preemption hit mid-schedule: structured abort, then a completed
      // retry on the surviving world.
      abort_steps.push_back(result.attempts.front().outcome.abort_step);
      ASSERT_EQ(result.surviving_world, world - 1);
      ASSERT_EQ(result.rescales, 1);
      ASSERT_EQ(result.attempts.size(), 2u);
      ASSERT_TRUE(result.attempts.back().outcome.completed());
      ASSERT_GE(result.attempts.front().outcome.abort_step, 0);
      // The abort charged the detection timeout before the rebuild.
      ASSERT_GE(result.attempts.back().outcome.finish, t + 0.1 + 0.5);

      // Bitwise oracle: fresh buffers, fresh cluster, shrunk world.
      const SurvivorWorld survivor =
          shrink_topology(topo, {kDeadRank});
      std::vector<Tensor> fresh =
          random_buffers(world, elems, 500 + static_cast<uint64_t>(i));
      RankData fresh_data;
      for (const int old_rank : survivor.old_rank) {
        fresh_data.push_back(fresh[static_cast<size_t>(old_rank)].span());
      }
      run_fresh(algorithm, survivor.topology, fresh_data, elems);
      for (const int old_rank : survivor.old_rank) {
        const auto r = static_cast<size_t>(old_rank);
        ASSERT_EQ(std::memcmp(buffers[r].data(), fresh[r].data(),
                              elems * sizeof(float)),
                  0)
            << "survivor (old rank " << old_rank
            << ") differs from the fresh shrunk-world run at t=" << t;
      }
      // The dead rank's buffer is untouched by the retry.
      std::vector<Tensor> inputs =
          random_buffers(world, elems, 500 + static_cast<uint64_t>(i));
      const auto dead = static_cast<size_t>(kDeadRank);
      if (algorithm != ElasticAlgorithm::kGtopk) {
        // (gTop-k primes inputs in-place before the schedule runs, so only
        // the dense All-Reduce paths keep the dead buffer bit-pristine.)
        ASSERT_EQ(std::memcmp(buffers[dead].data(), inputs[dead].data(),
                              elems * sizeof(float)),
                  0);
      }
    } else {
      // The preemption landed after the last send started: the full-world
      // attempt completed before anyone observed the failure.
      ASSERT_EQ(result.surviving_world, world);
    }
  }
  std::sort(abort_steps.begin(), abort_steps.end());
  abort_steps.erase(std::unique(abort_steps.begin(), abort_steps.end()),
                    abort_steps.end());
  *abort_steps_out = abort_steps;
}

void expect_gapless(const std::vector<int>& steps, int expected_first,
                    int expected_last) {
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps.front(), expected_first);
  EXPECT_EQ(steps.back(), expected_last);
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i], expected_first + static_cast<int>(i))
        << "abort-step coverage gap";
  }
}

// A preemption is observable only by a send starting at or after it; every
// step-0 send of a dense All-Reduce starts exactly at the attempt's start
// time, so a "step 0" death is indistinguishable from dead-at-start and is
// handled by the survivor filter (asserted inside sweep()).  Hence the
// mid-schedule sweeps cover steps 1..last.
TEST(ElasticRescale, RingEveryStepIndex) {
  // p = 6: 2(p-1) = 10 ring steps, indices 0..9.
  std::vector<int> steps;
  sweep(ElasticAlgorithm::kRing, fabric(3, 2), 48, &steps);
  expect_gapless(steps, 1, 9);
}

TEST(ElasticRescale, BlueConnectEveryStepIndex) {
  const Topology topo = fabric(3, 2);
  // Auto-derived factors {2, 3} on 3x2: RS 1+2 steps descending, then
  // AG 2+1 ascending = 6 steps, indices 0..5.
  std::vector<int> steps;
  sweep(ElasticAlgorithm::kBlueConnect, topo, 48, &steps);
  expect_gapless(steps, 1, 5);
}

TEST(ElasticRescale, GtopkEveryStepIndex) {
  // p = 6 folds to q = 4: fold + 2 exchange rounds + unfold.  gTop-k's
  // step-0 sends start after the local compression compute, so even step 0
  // is killable mid-schedule here.
  std::vector<int> steps;
  sweep(ElasticAlgorithm::kGtopk, fabric(3, 2), 64, &steps);
  expect_gapless(steps, 0, static_cast<int>(steps.size()) - 1);
  EXPECT_GE(steps.size(), 3u);
}

TEST(ElasticRescale, SecondPreemptionShrinksTwice) {
  const Topology topo = fabric(3, 2);
  const size_t elems = 48;
  ElasticOptions options;
  options.reschedule_seconds = 0.5;

  // Probe: learn when the retry starts after rank 1 dies early.
  simnet::FaultPlan probe;
  probe.preempt(1, 1e-9);
  probe.set_detection_timeout(0.1);
  const auto first =
      elastic_allreduce(topo, probe, {}, elems, options, 0.0);
  ASSERT_TRUE(first.completed);
  ASSERT_EQ(first.surviving_world, 5);
  const double retry_start = first.attempts.front().outcome.finish + 0.5;

  // Kill rank 4 a hair after the retry begins — late enough that the
  // rescale's liveness check still sees it alive (so attempt 2 runs and
  // aborts mid-schedule), early enough to hit attempt 2's first steps.
  simnet::FaultPlan plan;
  plan.preempt(1, 1e-9);
  plan.preempt(4, retry_start + 1e-9);
  plan.set_detection_timeout(0.1);
  std::vector<Tensor> buffers = random_buffers(topo.world_size(), elems, 901);
  const auto result =
      elastic_allreduce(topo, plan, spans_of(buffers), elems, options, 0.0);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.surviving_world, 4);
  EXPECT_EQ(result.rescales, 2);
  EXPECT_EQ(result.survivors, (std::vector<int>{0, 2, 3, 5}));

  const SurvivorWorld survivor = shrink_topology(topo, {1, 4});
  std::vector<Tensor> fresh = random_buffers(topo.world_size(), elems, 901);
  RankData fresh_data;
  for (const int old_rank : survivor.old_rank) {
    fresh_data.push_back(fresh[static_cast<size_t>(old_rank)].span());
  }
  run_fresh(ElasticAlgorithm::kRing, survivor.topology, fresh_data, elems);
  for (const int old_rank : survivor.old_rank) {
    const auto r = static_cast<size_t>(old_rank);
    ASSERT_EQ(
        std::memcmp(buffers[r].data(), fresh[r].data(), elems * sizeof(float)),
        0)
        << "old rank " << old_rank;
  }
}

TEST(ElasticRescale, SingleSurvivorCompletesTrivially) {
  // All but one rank dead at start: the All-Reduce of one contribution is
  // the identity, so the attempt completes instantly — no schedule, no
  // traffic, no time, and the survivor's buffer is bit-untouched.
  const Topology topo = fabric(3, 2);
  const size_t elems = 48;
  for (const auto algorithm :
       {ElasticAlgorithm::kRing, ElasticAlgorithm::kBlueConnect,
        ElasticAlgorithm::kGtopk}) {
    simnet::FaultPlan plan;
    for (int r = 1; r < topo.world_size(); ++r) plan.preempt(r, 0.0);
    ElasticOptions options;
    options.algorithm = algorithm;
    options.gtopk.density = 0.05;
    std::vector<Tensor> buffers = random_buffers(topo.world_size(), elems, 77);
    const std::vector<Tensor> inputs =
        random_buffers(topo.world_size(), elems, 77);
    const auto result =
        elastic_allreduce(topo, plan, spans_of(buffers), elems, options, 0.0);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.surviving_world, 1);
    EXPECT_EQ(result.survivors, (std::vector<int>{0}));
    ASSERT_EQ(result.attempts.size(), 1u);
    EXPECT_EQ(result.finish, 0.0);
    EXPECT_EQ(result.rescales, 0);
    EXPECT_EQ(result.regrows, 0);
    EXPECT_EQ(std::memcmp(buffers[0].data(), inputs[0].data(),
                          elems * sizeof(float)),
              0);
  }
}

TEST(ElasticRescale, AllSurvivorsOnOneNodeRunHierarchyFree) {
  // Two whole nodes die, leaving both survivors on node 0: the rebuilt
  // world has no inter-node links, so every algorithm must run a flat,
  // hierarchy-free schedule — and match the fresh single-node oracle
  // bitwise.  (BlueConnect's auto factor derivation on one node already
  // yields the flat {p} ring; the elastic re-derivation must agree.)
  const Topology topo = fabric(3, 2);
  const size_t elems = 48;
  for (const auto algorithm :
       {ElasticAlgorithm::kRing, ElasticAlgorithm::kBlueConnect,
        ElasticAlgorithm::kGtopk}) {
    simnet::FaultPlan plan;
    for (int r = 2; r < topo.world_size(); ++r) plan.preempt(r, 0.0);
    ElasticOptions options;
    options.algorithm = algorithm;
    options.gtopk.density = 0.05;
    std::vector<Tensor> buffers = random_buffers(topo.world_size(), elems, 78);
    const auto result =
        elastic_allreduce(topo, plan, spans_of(buffers), elems, options, 0.0);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.surviving_world, 2);
    ASSERT_EQ(result.attempts.size(), 1u);

    const SurvivorWorld survivor = shrink_topology(topo, {2, 3, 4, 5});
    EXPECT_EQ(survivor.topology.nodes(), 1);
    std::vector<Tensor> fresh = random_buffers(topo.world_size(), elems, 78);
    RankData fresh_data;
    for (const int old_rank : survivor.old_rank) {
      fresh_data.push_back(fresh[static_cast<size_t>(old_rank)].span());
    }
    run_fresh(algorithm, survivor.topology, fresh_data, elems);
    for (const int old_rank : survivor.old_rank) {
      const auto r = static_cast<size_t>(old_rank);
      ASSERT_EQ(std::memcmp(buffers[r].data(), fresh[r].data(),
                            elems * sizeof(float)),
                0)
          << "old rank " << old_rank;
    }
  }
}

TEST(ElasticRescale, RecoveredRankRejoinsTheRetry) {
  // Grow path: rank 1 dies during attempt 1 and recovers while attempt 2
  // (which excluded it) is still running; when rank 4's death aborts
  // attempt 2, the third attempt re-derives membership from the full-world
  // plan and rank 1 rejoins.  The completed world is {0,1,2,3,5} and the
  // result matches a fresh run with only rank 4 removed.
  const Topology topo = fabric(3, 2);
  const size_t elems = 48;
  ElasticOptions options;
  options.reschedule_seconds = 0.5;

  // Probe 1: when does attempt 2 start after rank 1 dies immediately?
  simnet::FaultPlan probe1;
  probe1.preempt(1, 1e-9);
  probe1.set_detection_timeout(0.1);
  const auto first = elastic_allreduce(topo, probe1, {}, elems, options, 0.0);
  ASSERT_TRUE(first.completed);
  const double retry_start = first.attempts.front().outcome.finish + 0.5;

  // Probe 2: when does attempt 2 abort after rank 4 dies just past its
  // start?  Attempt 3 then begins at that finish plus the reschedule cost.
  simnet::FaultPlan probe2;
  probe2.preempt(1, 1e-9);
  probe2.preempt(4, retry_start + 1e-9);
  probe2.set_detection_timeout(0.1);
  const auto second = elastic_allreduce(topo, probe2, {}, elems, options, 0.0);
  ASSERT_TRUE(second.completed);
  ASSERT_EQ(second.attempts.size(), 3u);
  const double abort_finish = second.attempts[1].outcome.finish;
  ASSERT_GT(abort_finish, retry_start);

  // Real plan: rank 1's outage window is [1e-9, abort_finish) — it is dead
  // for all of attempt 2 but alive again when attempt 3 re-derives.
  simnet::FaultPlan plan;
  plan.preempt(1, 1e-9, abort_finish);
  plan.preempt(4, retry_start + 1e-9);
  plan.set_detection_timeout(0.1);
  std::vector<Tensor> buffers = random_buffers(topo.world_size(), elems, 902);
  const auto result =
      elastic_allreduce(topo, plan, spans_of(buffers), elems, options, 0.0);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.attempts.size(), 3u);
  EXPECT_EQ(result.surviving_world, 5);
  EXPECT_EQ(result.survivors, (std::vector<int>{0, 1, 2, 3, 5}));
  EXPECT_EQ(result.rescales, 2);  // attempt 2 dropped 1; attempt 3 dropped 4
  EXPECT_EQ(result.regrows, 1);   // ... and regained 1
  EXPECT_GE(result.finish, abort_finish);

  // Aborted attempts never run the data pass, so the rejoined rank's input
  // is pristine and the final buffers match a fresh run without rank 4.
  const SurvivorWorld survivor = shrink_topology(topo, {4});
  std::vector<Tensor> fresh = random_buffers(topo.world_size(), elems, 902);
  RankData fresh_data;
  for (const int old_rank : survivor.old_rank) {
    fresh_data.push_back(fresh[static_cast<size_t>(old_rank)].span());
  }
  run_fresh(ElasticAlgorithm::kRing, survivor.topology, fresh_data, elems);
  for (const int old_rank : survivor.old_rank) {
    const auto r = static_cast<size_t>(old_rank);
    ASSERT_EQ(
        std::memcmp(buffers[r].data(), fresh[r].data(), elems * sizeof(float)),
        0)
        << "old rank " << old_rank;
  }
}

TEST(ElasticRescale, ShrinkTopologyMapsSurvivorsDensely) {
  const Topology topo = fabric(3, 2);  // ranks {0,1} {2,3} {4,5}
  const SurvivorWorld w = shrink_topology(topo, {1, 4});
  EXPECT_EQ(w.topology.world_size(), 4);
  EXPECT_EQ(w.topology.nodes(), 3);  // every node kept at least one GPU
  EXPECT_EQ(w.old_rank, (std::vector<int>{0, 2, 3, 5}));
  EXPECT_EQ(w.old_node, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(w.topology.uniform());  // 1 + 2 + 1 GPUs

  // A whole node dying removes it from the node list too.
  const SurvivorWorld gone = shrink_topology(topo, {2, 3});
  EXPECT_EQ(gone.topology.nodes(), 2);
  EXPECT_EQ(gone.old_node, (std::vector<int>{0, 2}));
  EXPECT_TRUE(gone.topology.uniform());

  EXPECT_THROW(shrink_topology(fabric(1, 2), {0, 1}), ConfigError);
}

}  // namespace elastic_sweep

// ---------------------------------------------------------------------------
// Multi-tenant backward compatibility: a single job on an idle cluster must
// replay to the exact pre-refactor clocks whatever its job id — across the
// same seven cluster shapes the builder-validation suite sweeps.
// ---------------------------------------------------------------------------
namespace job_invariance {

class JobIdInvarianceTest
    : public ::testing::TestWithParam<std::tuple<int, int, size_t>> {};

TEST_P(JobIdInvarianceTest, SingleJobClocksIndependentOfJobId) {
  const auto [m, n, elems] = GetParam();
  const Topology topo = fabric(m, n);
  const Group world = world_group(topo);
  std::vector<Group> groups{world};

  Schedule sched;
  const RingGrid grid = ring_grid(sched, groups, {});
  build_ring_reduce_scatter(sched, groups, grid, elems, coll::WireDtype::kFp32,
                            /*fused_chains=*/true);
  sched.sync(/*collapse=*/true);
  build_ring_allgather(sched, groups, grid, elems, coll::WireDtype::kFp32);

  Cluster as_default(topo);
  Cluster as_tenant(topo);
  const auto a = sched.run_timing(as_default, 0.25);
  const auto b = sched.run_timing(as_tenant, 0.25, /*job=*/9);
  EXPECT_DOUBLE_EQ(a.finish, b.finish);
  ASSERT_EQ(a.sync_times.size(), b.sync_times.size());
  for (size_t i = 0; i < a.sync_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sync_times[i], b.sync_times[i]);
  }
  EXPECT_DOUBLE_EQ(as_default.quiescent_time(), as_tenant.quiescent_time());
  EXPECT_EQ(as_default.inter_node_bytes(), as_tenant.inter_node_bytes());
  EXPECT_EQ(as_default.intra_node_bytes(), as_tenant.intra_node_bytes());

  // The abortable replay takes the same arithmetic path fault-free.
  Cluster abortable(topo);
  const ScheduleOutcome out = sched.run_timing_abortable(abortable, 0.25, 9);
  EXPECT_EQ(out.status, ScheduleStatus::kCompleted);
  EXPECT_DOUBLE_EQ(out.finish, a.finish);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JobIdInvarianceTest,
    ::testing::Values(std::tuple<int, int, size_t>{1, 1, 16},
                      std::tuple<int, int, size_t>{1, 4, 64},
                      std::tuple<int, int, size_t>{2, 2, 37},
                      std::tuple<int, int, size_t>{3, 2, 96},
                      std::tuple<int, int, size_t>{2, 3, 41},
                      std::tuple<int, int, size_t>{4, 4, 256},
                      std::tuple<int, int, size_t>{5, 3, 128}));

}  // namespace job_invariance

}  // namespace
}  // namespace hitopk::coll
