// Typed transfer payloads: wire-codec contract pins, the fp16-halves-bytes
// acceptance pins (simulated transfer bytes AND per-job accounted bytes),
// quantized error-feedback composition, the {8,8,4,4} uneven-fleet
// HiTopKComm regression, and the quantized engine-vs-legacy differential
// fuzz (CI runs this suite under ASan/UBSan and TSan with the seed pinned;
// HITOPK_WIRE_FUZZ_SEED / HITOPK_WIRE_FUZZ_SAMPLES override).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "collectives/hier_allreduce.h"
#include "collectives/hitopkcomm.h"
#include "collectives/ring.h"
#include "collectives/schedule.h"
#include "collectives/tree_allreduce.h"
#include "compress/error_feedback.h"
#include "compress/wire_codec.h"
#include "core/half.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "simnet/job_scheduler.h"
#include "train/tenant.h"

namespace hitopk {
namespace {

using coll::Group;
using coll::RankData;
using coll::WireDtype;
using compress::wire_payload_bytes;
using compress::wire_round_trip;
using simnet::Cluster;
using simnet::LinkParams;
using simnet::Topology;

Topology fabric(int nodes, int gpus) {
  return Topology(nodes, gpus, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
}

std::vector<Tensor> random_buffers(int world, size_t elems, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> buffers;
  for (int r = 0; r < world; ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    buffers.push_back(std::move(t));
  }
  return buffers;
}

// Integer-valued buffers make float addition exact (sums stay far below
// 2^24), so cross-algorithm comparisons can demand equality, not closeness.
std::vector<Tensor> integer_buffers(int world, size_t elems, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> values(-512, 512);
  std::vector<Tensor> buffers;
  for (int r = 0; r < world; ++r) {
    Tensor t(elems);
    for (float& x : t.span()) x = static_cast<float>(values(rng));
    buffers.push_back(std::move(t));
  }
  return buffers;
}

RankData spans_of(std::vector<Tensor>& buffers) {
  RankData spans;
  for (auto& b : buffers) spans.push_back(b.span());
  return spans;
}

void expect_bitwise_equal(const std::vector<Tensor>& a,
                          const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    ASSERT_EQ(
        std::memcmp(a[r].data(), b[r].data(), a[r].size() * sizeof(float)), 0)
        << "buffers of rank " << r << " differ";
  }
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value ? std::strtoull(value, nullptr, 10) : fallback;
}

// ----------------------------------------------------- codec contract

TEST(WireCodec, PayloadBytes) {
  EXPECT_EQ(wire_payload_bytes(WireDtype::kFp32, 1000), 4000u);
  EXPECT_EQ(wire_payload_bytes(WireDtype::kFp16, 1000), 2000u);
  // int8: one byte per element plus the 4-byte per-shard scale record.
  EXPECT_EQ(wire_payload_bytes(WireDtype::kInt8, 1000), 1004u);
  EXPECT_EQ(compress::wire_elem_bytes(WireDtype::kFp16), 2u);
  EXPECT_STREQ(compress::wire_dtype_name(WireDtype::kInt8), "int8");
}

TEST(WireCodec, Fp32IsBitwiseIdentity) {
  std::vector<float> values = {1.0f, -0.0f, 1e-30f,
                               std::numeric_limits<float>::quiet_NaN(),
                               std::numeric_limits<float>::infinity()};
  std::vector<float> before = values;
  wire_round_trip(WireDtype::kFp32, values);
  EXPECT_EQ(std::memcmp(values.data(), before.data(),
                        values.size() * sizeof(float)),
            0);
}

TEST(WireCodec, Fp16MatchesHalfRoundTrip) {
  Tensor a(257), b(257);
  Rng rng(5);
  a.fill_normal(rng, 0.0f, 3.0f);
  std::memcpy(b.data(), a.data(), a.size() * sizeof(float));
  wire_round_trip(WireDtype::kFp16, a.span());
  fp16_round_trip(b.span());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(WireCodec, Int8ScaleIsPowerOfTwoAndErrorBounded) {
  Tensor t(1000);
  Rng rng(7);
  t.fill_normal(rng, 0.0f, 2.0f);
  Tensor orig(1000);
  std::memcpy(orig.data(), t.data(), t.size() * sizeof(float));

  const float scale = compress::int8_wire_scale(t.span());
  ASSERT_GT(scale, 0.0f);
  int exp = 0;
  EXPECT_EQ(std::frexp(scale, &exp), 0.5f) << "scale must be a power of two";

  wire_round_trip(WireDtype::kInt8, t.span());
  for (size_t i = 0; i < t.size(); ++i) {
    // Every decoded value is q*scale for an integer q in [-127, 127], and
    // round-half-away keeps the error within scale/2.
    const float q = t[i] / scale;
    EXPECT_EQ(q, std::nearbyint(q)) << i;
    EXPECT_LE(std::fabs(q), 127.0f) << i;
    EXPECT_LE(std::fabs(t[i] - orig[i]), scale * 0.5f + 1e-12f) << i;
  }
}

TEST(WireCodec, RoundTripsAreIdempotent) {
  for (const WireDtype wire : {WireDtype::kFp16, WireDtype::kInt8}) {
    Tensor t(777);
    Rng rng(11);
    t.fill_normal(rng, 0.0f, 1.0f);
    wire_round_trip(wire, t.span());
    Tensor once(777);
    std::memcpy(once.data(), t.data(), t.size() * sizeof(float));
    wire_round_trip(wire, t.span());
    EXPECT_EQ(std::memcmp(t.data(), once.data(), t.size() * sizeof(float)), 0)
        << compress::wire_dtype_name(wire);
  }
}

TEST(WireCodec, Int8NonFiniteAndZeroShardsPassThrough) {
  std::vector<float> weird = {std::numeric_limits<float>::infinity(),
                              -std::numeric_limits<float>::quiet_NaN(), 1.5f,
                              0.0f};
  std::vector<float> before = weird;
  wire_round_trip(WireDtype::kInt8, weird);
  EXPECT_TRUE(std::isinf(weird[0]));
  EXPECT_TRUE(std::isnan(weird[1]));
  // The finite value still quantizes against the finite max magnitude.
  EXPECT_NEAR(weird[2], 1.5f, compress::int8_wire_scale(before) * 0.5f);

  std::vector<float> zeros(16, 0.0f);
  zeros[3] = -0.0f;
  std::vector<float> zeros_before = zeros;
  EXPECT_EQ(compress::int8_wire_scale(zeros), 0.0f);
  wire_round_trip(WireDtype::kInt8, zeros);
  EXPECT_EQ(std::memcmp(zeros.data(), zeros_before.data(),
                        zeros.size() * sizeof(float)),
            0);
}

// ------------------------------------------- fp16 halves bytes (pinned)

TEST(Fp16HalvesBytes, SimulatedTransferBytes) {
  // Acceptance pin: the fp16 wire halves the simulated transfer bytes of a
  // dense All-Reduce exactly — Send.bytes derives from the wire dtype.
  const Topology topo = fabric(3, 2);
  const size_t elems = 4096;
  Cluster fp32(topo), fp16(topo);
  coll::ring_allreduce(fp32, coll::world_group(topo), {}, elems,
                       WireDtype::kFp32, 0.0);
  coll::ring_allreduce(fp16, coll::world_group(topo), {}, elems,
                       WireDtype::kFp16, 0.0);
  EXPECT_GT(fp32.inter_node_bytes(), 0u);
  EXPECT_EQ(fp16.inter_node_bytes() * 2, fp32.inter_node_bytes());
  EXPECT_EQ(fp16.intra_node_bytes() * 2, fp32.intra_node_bytes());
  // And the timing pass sees the cheaper wire: fp16 finishes earlier.
  Cluster again32(topo), again16(topo);
  const double t32 = coll::ring_allreduce(again32, coll::world_group(topo), {},
                                          elems, WireDtype::kFp32, 0.0);
  const double t16 = coll::ring_allreduce(again16, coll::world_group(topo), {},
                                          elems, WireDtype::kFp16, 0.0);
  EXPECT_LT(t16, t32);
}

TEST(Fp16HalvesBytes, RecordedSendBytesHalve) {
  // The same pin at the schedule-record level: every recorded Send of the
  // fp16 build carries exactly half the bytes of its fp32 twin.
  const Topology topo = fabric(2, 2);
  const Group world = coll::world_group(topo);
  const size_t elems = 1024;
  auto record = [&](WireDtype wire) {
    coll::Schedule sched;
    std::vector<Group> groups{world};
    std::vector<RankData> group_data{{}};
    const coll::RingGrid grid =
        coll::ring_grid(sched, groups, group_data, wire);
    coll::build_ring_reduce_scatter(sched, groups, grid, elems, wire,
                                    /*fused_chains=*/true);
    sched.sync(/*collapse=*/true);
    coll::build_ring_allgather(sched, groups, grid, elems, wire);
    return sched;
  };
  const coll::Schedule a = record(WireDtype::kFp32);
  const coll::Schedule b = record(WireDtype::kFp16);
  ASSERT_EQ(a.sends().size(), b.sends().size());
  ASSERT_FALSE(a.sends().empty());
  for (size_t i = 0; i < a.sends().size(); ++i) {
    EXPECT_EQ(b.sends()[i].bytes * 2, a.sends()[i].bytes) << "send " << i;
  }
}

TEST(Fp16HalvesBytes, PerJobAccountedBytes) {
  // Acceptance pin: per-job byte accounting reflects the wire dtype — a
  // fp16 tenant places exactly half the bytes of an identical fp32 tenant.
  const Topology topo = fabric(2, 2);
  auto run = [&](WireDtype wire) {
    Cluster cluster(topo);
    simnet::JobScheduler sched(cluster, {});
    train::TenantWorkload workload;
    workload.resolution = 96;
    workload.wire = wire;
    std::vector<simnet::JobSpec> jobs(1);
    jobs[0] = {/*id=*/7, /*arrival=*/0.0, /*gpus=*/4, /*iterations=*/2,
               /*bytes=*/size_t{1} << 20, /*isolated_seconds=*/0.0};
    sched.run(jobs, train::make_tenant_body(workload));
    return std::pair<size_t, size_t>{cluster.inter_node_bytes(7),
                                     cluster.intra_node_bytes(7)};
  };
  const auto [inter32, intra32] = run(WireDtype::kFp32);
  const auto [inter16, intra16] = run(WireDtype::kFp16);
  EXPECT_GT(inter32, 0u);
  EXPECT_EQ(inter16 * 2, inter32);
  EXPECT_EQ(intra16 * 2, intra32);
}

// ------------------------------------------ quantized error feedback

TEST(QuantizedEf, ResidualAbsorbsQuantizationError) {
  // EF with a lossy wire: the residual at a sent coordinate is exactly the
  // quantization error (gradient minus the decoded wire value), and +0.0
  // where the send was exact.
  compress::ErrorFeedback ef;
  Tensor grad(64);
  Rng rng(3);
  grad.fill_normal(rng, 0.0f, 1.0f);
  Tensor acc(64);
  std::memcpy(acc.data(), grad.data(), 64 * sizeof(float));

  ef.apply_priming("g", grad.span());  // zero residual: grad unchanged
  compress::SparseTensor sent;
  sent.dense_size = 64;
  for (uint32_t i = 0; i < 64; i += 4) {
    sent.indices.push_back(i);
    sent.values.push_back(grad[i]);
  }
  wire_round_trip(WireDtype::kInt8, sent.values);
  ef.absorb_primed("g", sent);

  const auto residual = ef.residual("g");
  for (size_t i = 0; i < 64; ++i) {
    if (i % 4 == 0) {
      EXPECT_EQ(residual[i], acc[i] - sent.values[i / 4]) << i;
    } else {
      EXPECT_EQ(residual[i], acc[i]) << i;
    }
  }
}

TEST(QuantizedEf, HitopkQuantizedRunsAreBitwiseDeterministic) {
  // The quantized HiTopKComm pipeline under parallel_for: two identical
  // runs produce bitwise-identical buffers and residuals.
  const Topology topo = fabric(2, 3);
  for (const WireDtype wire : {WireDtype::kFp16, WireDtype::kInt8}) {
    std::vector<Tensor> a = random_buffers(topo.world_size(), 515, 21);
    std::vector<Tensor> b = a;
    compress::ErrorFeedback ef_a, ef_b;
    coll::HiTopKOptions options;
    options.density = 0.05;
    options.value_wire = wire;
    options.error_feedback = &ef_a;
    Cluster ca(topo);
    coll::hitopk_comm(ca, spans_of(a), 515, options, 0.0);
    options.error_feedback = &ef_b;
    Cluster cb(topo);
    coll::hitopk_comm(cb, spans_of(b), 515, options, 0.0);
    expect_bitwise_equal(a, b);
    EXPECT_EQ(ef_a.residual_sq_norm(), ef_b.residual_sq_norm());
    EXPECT_GT(ef_a.residual_sq_norm(), 0.0);  // lossy wire leaves residual
    for (const std::string& key : ef_a.keys()) {
      ASSERT_TRUE(ef_b.has(key));
      const auto ra = ef_a.residual(key);
      const auto rb = ef_b.residual(key);
      ASSERT_EQ(std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(float)),
                0)
          << key;
    }
  }
}

TEST(QuantizedEf, RestoreAndContinueIdentity) {
  // Checkpoint the quantized EF state after step 1, restore it into a fresh
  // ErrorFeedback, and run step 2 on both: bitwise-identical trajectories.
  const Topology topo = fabric(2, 2);
  const size_t elems = 300;
  coll::HiTopKOptions options;
  options.density = 0.08;
  options.value_wire = WireDtype::kInt8;

  std::vector<Tensor> step1 = random_buffers(topo.world_size(), elems, 31);
  compress::ErrorFeedback live;
  options.error_feedback = &live;
  Cluster c1(topo);
  coll::hitopk_comm(c1, spans_of(step1), elems, options, 0.0);

  // Snapshot (keys + residuals), restore into a fresh instance.
  compress::ErrorFeedback restored;
  for (const std::string& key : live.keys()) {
    restored.set(key, live.residual(key));
  }

  std::vector<Tensor> next_live = random_buffers(topo.world_size(), elems, 32);
  std::vector<Tensor> next_restored = next_live;
  Cluster c2(topo);
  coll::hitopk_comm(c2, spans_of(next_live), elems, options, 0.0);
  options.error_feedback = &restored;
  Cluster c3(topo);
  coll::hitopk_comm(c3, spans_of(next_restored), elems, options, 0.0);

  expect_bitwise_equal(next_live, next_restored);
  EXPECT_EQ(live.residual_sq_norm(), restored.residual_sq_norm());
}

// --------------------------------------- uneven fleets ({8,8,4,4} pin)

TEST(HiTopKUneven, Fleet8844DenseSumExact) {
  // The ISSUE's regression fleet: two 8-GPU and two 4-GPU nodes.  With
  // density 1.0 every coordinate is selected, so the aggregated gradient
  // must equal the dense sum — exactly, on integer-valued inputs.
  const Topology topo(std::vector<int>{8, 8, 4, 4}, LinkParams{1e-6, 1e-9},
                      LinkParams{1e-5, 1e-8});
  const size_t elems = 4099;  // ragged against L = 8 shards
  std::vector<Tensor> grads = integer_buffers(topo.world_size(), elems, 41);
  Tensor reference(elems);
  for (const auto& g : grads) {
    for (size_t i = 0; i < elems; ++i) reference.span()[i] += g[i];
  }
  coll::HiTopKOptions options;
  options.density = 1.0;
  Cluster cluster(topo);
  coll::hitopk_comm(cluster, spans_of(grads), elems, options, 0.0);
  for (size_t r = 0; r < grads.size(); ++r) {
    for (size_t i = 0; i < elems; ++i) {
      ASSERT_EQ(grads[r][i], reference[i]) << "rank " << r << " elem " << i;
    }
  }
}

TEST(HiTopKUneven, Fleet8844SparseConsistentAndShardKeyedEf) {
  const Topology topo(std::vector<int>{8, 8, 4, 4}, LinkParams{1e-6, 1e-9},
                      LinkParams{1e-5, 1e-8});
  const size_t elems = 2051;
  std::vector<Tensor> grads = random_buffers(topo.world_size(), elems, 43);
  compress::ErrorFeedback ef;
  coll::HiTopKOptions options;
  options.density = 0.02;
  options.value_wire = WireDtype::kFp16;
  options.error_feedback = &ef;
  Cluster cluster(topo);
  coll::hitopk_comm(cluster, spans_of(grads), elems, options, 0.0);
  // All ranks converge to one buffer.
  for (size_t r = 1; r < grads.size(); ++r) {
    ASSERT_EQ(std::memcmp(grads[r].data(), grads[0].data(),
                          elems * sizeof(float)),
              0)
        << "rank " << r;
  }
  // A GPU on a 4-GPU node owns L/g = 2 of the 8 shards; EF keys are
  // per-(rank, shard).
  EXPECT_TRUE(ef.has("grad:0:s0"));   // GPU 0 of node 0 owns shard 0
  EXPECT_TRUE(ef.has("grad:16:s0"));  // GPU 0 of node 2 owns shards 0 and 4
  EXPECT_TRUE(ef.has("grad:16:s4"));
  EXPECT_FALSE(ef.has("grad:0:s1"));
}

TEST(HiTopKUneven, TimingOnlyAdvancesClocksAndBytes) {
  const Topology topo(std::vector<int>{8, 8, 4, 4}, LinkParams{1e-6, 1e-9},
                      LinkParams{1e-5, 1e-8});
  coll::HiTopKOptions options;
  options.density = 0.01;
  Cluster cluster(topo);
  const auto breakdown =
      coll::hitopk_comm(cluster, {}, 1u << 18, options, 0.0);
  EXPECT_GT(breakdown.total, 0.0);
  EXPECT_GT(breakdown.reduce_scatter, 0.0);
  EXPECT_GT(breakdown.inter_allgather, 0.0);
  EXPECT_GT(cluster.inter_node_bytes(), 0u);
  EXPECT_LT(cluster.inter_node_bytes(), cluster.intra_node_bytes());
}

// ------------------------------- quantized differential fuzz (engine)

// Restores the default engine path when a sample exits (also on failure).
class PathGuard {
 public:
  explicit PathGuard(coll::CollectivePath path) {
    coll::set_collective_path(path);
  }
  ~PathGuard() { coll::set_collective_path(coll::CollectivePath::kSchedule); }
};

TEST(WireFuzz, QuantizedEngineMatchesLegacyBitwise) {
  // Random shapes x {fp16, int8} x {ring, tree, hier}: the schedule engine
  // and the legacy per-hop loop must agree bitwise on buffers and exactly
  // on clocks — the codec applies at the same shard boundaries on both
  // paths (idempotence makes the resolved multi-hop copies equal).
  const uint64_t seed = env_u64("HITOPK_WIRE_FUZZ_SEED", 20260807);
  const uint64_t samples = env_u64("HITOPK_WIRE_FUZZ_SAMPLES", 60);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> nodes_dist(1, 4);
  std::uniform_int_distribution<int> gpus_dist(1, 3);
  std::uniform_int_distribution<int> log_elems(4, 11);
  std::uniform_int_distribution<size_t> ragged(0, 5);
  std::uniform_int_distribution<int> wire_dist(0, 1);
  std::uniform_int_distribution<int> kind_dist(0, 2);

  for (uint64_t i = 0; i < samples; ++i) {
    const int nodes = nodes_dist(rng);
    const int gpus = gpus_dist(rng);
    const size_t elems = (size_t{1} << log_elems(rng)) + ragged(rng);
    const WireDtype wire =
        wire_dist(rng) == 0 ? WireDtype::kFp16 : WireDtype::kInt8;
    const Topology topo = fabric(nodes, gpus);
    int kind = kind_dist(rng);
    if (topo.world_size() == 1 || (kind == 2 && nodes == 1)) kind = 0;
    SCOPED_TRACE("seed=" + std::to_string(seed) + " sample=" +
                 std::to_string(i) + " nodes=" + std::to_string(nodes) +
                 " gpus=" + std::to_string(gpus) + " elems=" +
                 std::to_string(elems) + " wire=" +
                 compress::wire_dtype_name(wire) + " kind=" +
                 std::to_string(kind));

    auto run = [&](Cluster& cluster, const RankData& data) {
      switch (kind) {
        case 0:
          return coll::ring_allreduce(cluster, coll::world_group(topo), data,
                                      elems, wire, 0.0);
        case 1: {
          coll::TreeOptions tree;
          tree.wire = wire;
          return coll::tree_allreduce(cluster, coll::world_group(topo), data,
                                      elems, tree, 0.0);
        }
        default:
          return coll::hier_allreduce(cluster, data, elems, wire, 0.0).total;
      }
    };

    std::vector<Tensor> buf_sched =
        random_buffers(topo.world_size(), elems, seed ^ (i * 0x9e3779b97f4a7c15ull));
    std::vector<Tensor> buf_legacy = buf_sched;
    double t_sched, t_legacy;
    {
      PathGuard guard(coll::CollectivePath::kSchedule);
      Cluster cluster(topo);
      t_sched = run(cluster, spans_of(buf_sched));
    }
    {
      PathGuard guard(coll::CollectivePath::kLegacy);
      Cluster cluster(topo);
      t_legacy = run(cluster, spans_of(buf_legacy));
    }
    EXPECT_DOUBLE_EQ(t_sched, t_legacy);
    expect_bitwise_equal(buf_sched, buf_legacy);
  }
}

}  // namespace
}  // namespace hitopk
