// Property tests for the single-pass histogram MSTopK against the legacy
// multi-pass binary search (the validation reference): both variants must
// return exactly k elements and honor Alg. 1's certain-set/band semantics on
// random, tied, all-equal, and adversarially skewed inputs, and the
// histogram selection must capture nearly all exact top-k magnitude mass.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace hitopk::compress {
namespace {

struct NamedInput {
  std::string name;
  Tensor x;
};

// The adversarial input family from the issue: random Gaussians, heavy ties,
// constant magnitude, and skewed distributions where almost all magnitude
// mass hides in a handful of coordinates or spans many decades.
std::vector<NamedInput> adversarial_inputs() {
  std::vector<NamedInput> inputs;

  {
    Rng rng(101);
    Tensor x(20000);
    x.fill_normal(rng, 0.0f, 1.0f);
    inputs.push_back({"gaussian", std::move(x)});
  }
  {
    // Tied magnitudes: every element is one of three values.
    Rng rng(103);
    Tensor x(8192);
    for (size_t i = 0; i < x.size(); ++i) {
      const uint64_t r = rng.uniform_index(3);
      x[i] = (r == 0 ? 0.5f : r == 1 ? -2.0f : 8.0f);
    }
    inputs.push_back({"tied", std::move(x)});
  }
  {
    // All-equal magnitude (degenerate: mean == max).
    Tensor x(4096);
    x.fill(-3.25f);
    inputs.push_back({"all_equal", std::move(x)});
  }
  {
    Tensor x(4096);
    inputs.push_back({"all_zero", std::move(x)});
  }
  {
    // Denormal spread: all magnitudes within a sub-normal-float interval of
    // each other, so the bucket width collapses (regression: 1/width must
    // not become inf and poison the bucket indices with NaN).
    Tensor x(4096);
    x.fill(1e-40f);
    x[100] = 1.3e-40f;
    x[200] = -1.2e-40f;
    inputs.push_back({"denormal_spread", std::move(x)});
  }
  {
    // Skewed: a near-zero noise floor with a few huge spikes, so the
    // histogram's top buckets are almost empty and the bottom bucket holds
    // nearly everything.
    Rng rng(107);
    Tensor x(16384);
    x.fill_normal(rng, 0.0f, 1e-6f);
    for (size_t i = 0; i < 24; ++i) {
      x[i * 601] = (i % 2 ? 1.0e4f : -1.0e4f);
    }
    inputs.push_back({"spiked", std::move(x)});
  }
  {
    // Log-spaced magnitudes across 8 decades: every histogram bucket
    // boundary lands inside a dense region somewhere.
    Rng rng(109);
    Tensor x(10000);
    for (size_t i = 0; i < x.size(); ++i) {
      const double exponent = rng.uniform(-4.0, 4.0);
      x[i] = static_cast<float>(std::pow(10.0, exponent)) *
             (rng.uniform() < 0.5 ? -1.0f : 1.0f);
    }
    inputs.push_back({"log_spaced", std::move(x)});
  }
  return inputs;
}

// Alg. 1 contract checks shared by both variants.
void check_selection_semantics(const Tensor& x, size_t k, MsTopK& op,
                               const std::string& label) {
  SparseTensor s = op.compress(x.span(), k);
  const MsTopKStats& stats = op.last_stats();
  SCOPED_TRACE(label);

  // Exactly k distinct, valid, value-faithful selections.
  ASSERT_EQ(s.nnz(), std::min(k, x.size()));
  EXPECT_TRUE(s.is_valid());
  std::set<uint32_t> chosen(s.indices.begin(), s.indices.end());
  EXPECT_EQ(chosen.size(), s.nnz());
  for (size_t i = 0; i < s.nnz(); ++i) {
    EXPECT_EQ(s.values[i], x[s.indices[i]]);
  }
  if (k >= x.size()) return;

  // Bracket bookkeeping: whenever the search produced brackets, the recorded
  // counts must match the data and straddle k.
  if (stats.thres1 > 0.0f) {
    EXPECT_EQ(x.count_abs_ge(stats.thres1), stats.k1);
    EXPECT_LE(stats.k1, k);
    // Certain-set semantics: every element at or above thres1 is selected.
    for (size_t i = 0; i < x.size(); ++i) {
      if (std::fabs(x[i]) >= stats.thres1) {
        EXPECT_TRUE(chosen.count(static_cast<uint32_t>(i)))
            << "certain element " << i << " missing";
      }
    }
    if (stats.thres2 > 0.0f) {
      EXPECT_EQ(x.count_abs_ge(stats.thres2), stats.k2);
      EXPECT_GT(stats.k2, k);
      EXPECT_LT(stats.thres2, stats.thres1);
      // Band semantics: nothing below the loose bracket can be selected.
      for (size_t i = 0; i < s.nnz(); ++i) {
        EXPECT_GE(std::fabs(s.values[i]) + 1e-7f, stats.thres2);
      }
    }
  }
}

TEST(MsTopKHistogram, SemanticsMatchLegacyReferenceOnAdversarialInputs) {
  for (auto& input : adversarial_inputs()) {
    for (size_t k : {1u, 7u, 100u, 1000u}) {
      if (k >= input.x.size()) continue;
      MsTopK hist(30, 21);
      MsTopK linear(30, 21, MsTopKMode::kLinear);
      MsTopK legacy(30, 21, MsTopKMode::kMultiPass);
      check_selection_semantics(input.x, k, hist, input.name + "/histogram");
      check_selection_semantics(input.x, k, linear, input.name + "/linear");
      check_selection_semantics(input.x, k, legacy, input.name + "/legacy");
    }
  }
}

TEST(MsTopKHistogram, BitBracketCountsAreExactByConstruction) {
  // The bit-bucket search's bracket boundaries are float bit patterns, so
  // its recorded k1/k2 must equal the true counts with no verification
  // pass — including straddling k strictly whenever both brackets exist.
  for (auto& input : adversarial_inputs()) {
    for (size_t k : {1u, 7u, 100u, 1000u}) {
      if (k >= input.x.size()) continue;
      SCOPED_TRACE(input.name + "/k=" + std::to_string(k));
      MsTopK hist(30, 23);
      hist.compress(input.x.span(), k);
      const MsTopKStats& stats = hist.last_stats();
      EXPECT_EQ(stats.samplings, 2);  // coarse + refinement, never more
      if (stats.thres1 > 0.0f) {
        EXPECT_EQ(input.x.count_abs_ge(stats.thres1), stats.k1);
        EXPECT_LE(stats.k1, k);
      }
      if (stats.thres2 > 0.0f) {
        EXPECT_EQ(input.x.count_abs_ge(stats.thres2), stats.k2);
        EXPECT_GT(stats.k2, k);
      }
    }
  }
}

TEST(MsTopKHistogram, BracketsAtLeastAsTightAsNineSamplings) {
  // The linear histogram's 512 buckets resolve the threshold interval to
  // (max-mean)/512 — the same resolution as 9 binary-search halvings — and
  // the bit-bucket refinement resolves to 2^13 ulps (half-octave / 512),
  // tighter still on anything Gaussian-shaped.  Neither bracket gap may
  // exceed the 9-sampling legacy gap (plus float slop).
  Rng rng(211);
  Tensor x(100000);
  x.fill_normal(rng, 0.0f, 1.0f);
  const size_t k = 1000;

  MsTopK hist(30, 3);
  hist.compress(x.span(), k);
  const MsTopKStats hist_stats = hist.last_stats();

  MsTopK linear(30, 3, MsTopKMode::kLinear);
  linear.compress(x.span(), k);
  const MsTopKStats linear_stats = linear.last_stats();

  MsTopK legacy(9, 3, MsTopKMode::kMultiPass);
  legacy.compress(x.span(), k);
  const MsTopKStats legacy_stats = legacy.last_stats();

  ASSERT_GT(hist_stats.thres1, 0.0f);
  ASSERT_GT(hist_stats.thres2, 0.0f);
  ASSERT_GT(linear_stats.thres1, 0.0f);
  ASSERT_GT(linear_stats.thres2, 0.0f);
  const float hist_gap = hist_stats.thres1 - hist_stats.thres2;
  const float linear_gap = linear_stats.thres1 - linear_stats.thres2;
  const float legacy_gap = legacy_stats.thres1 - legacy_stats.thres2;
  EXPECT_LE(hist_gap, legacy_gap + 1e-6f);
  EXPECT_LE(hist_gap, linear_gap + 1e-6f);  // the refinement is tighter yet
  EXPECT_LE(linear_gap, legacy_gap + 1e-6f);
  // Pass structure: two bit-bucket counting passes vs one linear counting
  // pass (which also needs the statistics pass and a verification recount).
  EXPECT_EQ(hist_stats.samplings, 2);
  EXPECT_EQ(hist_stats.buckets, 512);
  EXPECT_EQ(linear_stats.samplings, 1);
  EXPECT_EQ(linear_stats.buckets, 512);
}

TEST(MsTopKHistogram, MassOverlapWithExactTopKAtAcceptanceScale) {
  // Acceptance criterion: >= 99% of exact top-k magnitude mass on Gaussian
  // inputs at d = 1M, density 0.001.
  Rng rng(223);
  Tensor x(1 << 20);
  x.fill_normal(rng, 0.0f, 1.0f);
  const size_t k = x.size() / 1000;

  MsTopK hist(30, 5);
  SparseTensor approx = hist.compress(x.span(), k);
  SparseTensor exact = exact_topk(x.span(), k);
  ASSERT_EQ(approx.nnz(), k);

  double approx_mass = 0.0, exact_mass = 0.0;
  for (float v : approx.values) approx_mass += std::fabs(v);
  for (float v : exact.values) exact_mass += std::fabs(v);
  EXPECT_GT(approx_mass, 0.99 * exact_mass);
}

TEST(MsTopKHistogram, RegistryExposesAllVariants) {
  auto hist = make_compressor("mstopk", 7);
  auto linear = make_compressor("mstopk_linear", 7);
  auto legacy = make_compressor("mstopk_legacy", 7);
  EXPECT_EQ(hist->name(), "mstopk");
  EXPECT_EQ(linear->name(), "mstopk_linear");
  EXPECT_EQ(legacy->name(), "mstopk_legacy");

  Rng rng(229);
  Tensor x(5000);
  x.fill_normal(rng, 0.0f, 1.0f);
  EXPECT_EQ(hist->compress(x.span(), 50).nnz(), 50u);
  EXPECT_EQ(linear->compress(x.span(), 50).nnz(), 50u);
  EXPECT_EQ(legacy->compress(x.span(), 50).nnz(), 50u);
}

TEST(MsTopKHistogram, NonFiniteInputsFallBackLikeTheLegacyPaths) {
  // A diverging training run can hand the compressor inf/NaN gradients.
  // The legacy searches degrade to the first-k fallback because their
  // mean/max statistics are poisoned; the bit-bucket search must do the
  // same instead of tripping its internal consistency checks.
  Tensor x(256);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 7) * 0.25f;
  }
  x[3] = std::numeric_limits<float>::infinity();
  x[10] = -std::numeric_limits<float>::infinity();
  x[77] = std::bit_cast<float>(0x7FA00000u);  // NaN payload
  for (size_t k : {1u, 2u, 50u}) {
    SCOPED_TRACE(k);
    MsTopK hist(30, 37);
    MsTopK linear(30, 37, MsTopKMode::kLinear);
    MsTopK legacy(30, 37, MsTopKMode::kMultiPass);
    const SparseTensor h = hist.compress(x.span(), k);
    const SparseTensor li = linear.compress(x.span(), k);
    const SparseTensor le = legacy.compress(x.span(), k);
    EXPECT_EQ(h.nnz(), k);
    EXPECT_TRUE(h.is_valid());
    // All three modes agree on the degenerate fallback (first k indices).
    EXPECT_EQ(h.indices, li.indices);
    EXPECT_EQ(h.indices, le.indices);
  }
}

TEST(MsTopKHistogram, HeavyTiesStillReturnExactlyK) {
  // All elements share one magnitude except a single outlier: the histogram
  // collapses to the heavy-ties branch and the band top-up must still
  // deliver exactly k.
  Tensor x(1024);
  x.fill(2.0f);
  x[500] = 9.0f;
  for (size_t k : {1u, 3u, 100u}) {
    MsTopK hist(30, 31);
    SparseTensor s = hist.compress(x.span(), k);
    EXPECT_EQ(s.nnz(), k);
    EXPECT_TRUE(s.is_valid());
  }
}

}  // namespace
}  // namespace hitopk::compress
