// Tests for LTFB-style tournament training: round structure, winner
// adoption, determinism, and fault tolerance (mid-round worker loss,
// population forfeits, total collapse).
#include <gtest/gtest.h>

#include "core/check.h"
#include "train/ltfb.h"
#include "train/synthetic.h"

namespace hitopk::train {
namespace {

LtfbOptions base_options() {
  LtfbOptions options;
  options.training.algorithm = ConvergenceAlgorithm::kTopk;
  options.training.nodes = 1;
  options.training.gpus_per_node = 2;
  options.training.local_batch = 32;
  options.training.epochs = 4;
  options.training.density = 0.05;
  options.training.seed = 21;
  options.populations = 2;
  options.round_epochs = 2;
  return options;
}

TaskFactory vision_factory() {
  // Same data seed for every population: identical task and held-out set,
  // so qualities are comparable; the engine seeds differentiate training.
  return [](int) { return make_vision_task(11); };
}

TEST(Ltfb, PlaysAllRoundsAndAdoptsWinners) {
  const auto result = run_ltfb(vision_factory(), base_options());
  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.rounds.size(), 2u);  // 4 epochs / 2 per round
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.standing, 2);
    ASSERT_EQ(round.winners.size(), 1u);
    EXPECT_GE(round.winners[0], 0);
    EXPECT_LT(round.winners[0], 2);
    EXPECT_GE(round.qualities[0], 0.0);
    EXPECT_GE(round.qualities[1], 0.0);
  }
  EXPECT_EQ(result.exchanges, 2);
  EXPECT_EQ(result.forfeits, 0);
  EXPECT_GT(result.best_quality, 0.0);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GE(result.final_quality[result.best_population],
            result.final_quality[1 - result.best_population]);
}

TEST(Ltfb, DeterministicAcrossRuns) {
  const auto a = run_ltfb(vision_factory(), base_options());
  const auto b = run_ltfb(vision_factory(), base_options());
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.best_population, b.best_population);
  EXPECT_EQ(a.best_quality, b.best_quality);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].winners, b.rounds[i].winners);
    EXPECT_EQ(a.rounds[i].qualities, b.rounds[i].qualities);
  }
}

TEST(Ltfb, OddPopulationCountGivesTailABye) {
  auto options = base_options();
  options.populations = 3;
  const auto result = run_ltfb(vision_factory(), options);
  EXPECT_TRUE(result.completed);
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.standing, 3);
    EXPECT_EQ(round.winners.size(), 1u);  // one pair, population 2 byes
  }
  EXPECT_EQ(result.exchanges, 2);
}

TEST(Ltfb, ToleratesMidRoundWorkerLoss) {
  auto options = base_options();
  // Population 0 loses one of its two workers mid-run (global rank 1 is
  // population 0, local worker 1) and later gets it back; the round still
  // completes and every exchange is played.
  options.faults.preempt(1, 0.4, 1.2);
  options.faults.set_detection_timeout(0.05);
  const auto result = run_ltfb(vision_factory(), options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.preemptions, 1);
  EXPECT_EQ(result.regrows, 1);
  EXPECT_EQ(result.forfeits, 0);
  ASSERT_EQ(result.rounds.size(), 2u);
  EXPECT_EQ(result.rounds[0].standing, 2);
  EXPECT_EQ(result.exchanges, 2);
  EXPECT_GT(result.best_quality, 0.0);
}

TEST(Ltfb, FullyDeadPopulationForfeitsAndByesOut) {
  auto options = base_options();
  // Population 1 (global ranks 2, 3) loses both workers permanently early
  // in round 1: it forfeits, the survivor finishes all rounds alone with
  // no exchanges after that.
  options.faults.preempt(2, 0.2);
  options.faults.preempt(3, 0.25);
  options.faults.set_detection_timeout(0.05);
  const auto result = run_ltfb(vision_factory(), options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.forfeits, 1);
  EXPECT_EQ(result.preemptions, 2);
  ASSERT_EQ(result.rounds.size(), 2u);
  EXPECT_EQ(result.rounds[0].standing, 1);
  EXPECT_EQ(result.rounds[0].winners.size(), 0u);
  EXPECT_EQ(result.exchanges, 0);
  EXPECT_EQ(result.best_population, 0);
  EXPECT_EQ(result.final_quality[1], -1.0);
  EXPECT_GT(result.final_quality[0], 0.0);
}

TEST(Ltfb, AllPopulationsDeadEndsIncomplete) {
  auto options = base_options();
  for (int r = 0; r < 4; ++r) options.faults.preempt(r, 0.2);
  options.faults.set_detection_timeout(0.05);
  const auto result = run_ltfb(vision_factory(), options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.forfeits, 2);
  EXPECT_EQ(result.best_quality, 0.0);
}

TEST(Ltfb, ValidatesOptions) {
  auto options = base_options();
  options.round_epochs = 3;  // 4 % 3 != 0
  EXPECT_THROW(run_ltfb(vision_factory(), options), ConfigError);
  options = base_options();
  options.populations = 0;
  EXPECT_THROW(run_ltfb(vision_factory(), options), ConfigError);
  options = base_options();
  EXPECT_THROW(
      run_ltfb([](int) { return std::unique_ptr<ConvergenceTask>(); },
               options),
      ConfigError);
}

}  // namespace
}  // namespace hitopk::train
