// Fig. 11 (fault axis): goodput under preemption on the public cloud.
//
// Sweeps preemption rate x checkpoint interval x recovery policy on the
// 16x8 Tencent Cloud cluster (ResNet-50 @96^2, MSTopK-SGD) and reports
// goodput (useful samples per wall second, as a fraction of the fault-free
// rate), lost-work fraction, and mean time-to-recover.  The expected shape:
//
//   - abort-and-restart has an interior optimal checkpoint interval that
//     shifts *shorter* as the rate grows (the classic lost-work vs
//     checkpoint-overhead trade-off), and thrashes outright when the
//     rollback window plus restart cost approaches the MTBF;
//   - elastic-continue degrades gracefully — it loses only the in-flight
//     iteration plus a re-shard, never rolls back, and so always prefers
//     the longest interval; its goodput tracks the shrinking world.
//
// Every number is a deterministic function of the seed (the port-clock
// simulator plus seeded Poisson scripts — no wall clocks), so the whole
// output sits under the JSON "sim" subtree and the CI perf gate pins it to
// 1e-6 relative (bench/refs/BENCH_fig11.json; schema in docs/REPRODUCING.md).
//
// A second axis sweeps the checkpoint interval alone at a fixed preemption
// rate with the *size-derived* write cost (checkpoint_write_gbps prices a
// snapshot from the model's three float state planes instead of the flat
// checkpoint_seconds), tracing the interior optimum directly.
//
// Flags: --iterations=N (default 2000)  --seed=N (default 42)
//        --ckpt_gbps=F (default 2.0, interval sweep write rate)
//        --json=PATH (default BENCH_fig11.json; empty disables)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/flags.h"
#include "core/table.h"
#include "train/scenario.h"

namespace {

using namespace hitopk;
using namespace hitopk::train;

struct Row {
  double rate = 0.0;  // preemptions per node-hour
  int interval = 0;   // checkpoint interval (iterations)
  const char* policy = "";
  ScenarioResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int iterations = flags.get_int("iterations", 2000);
  const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 42));
  const double ckpt_gbps = flags.get_double("ckpt_gbps", 2.0);
  const std::string json_path = flags.get("json", "BENCH_fig11.json");

  std::cout << "=== Fig. 11: preemption rate x checkpoint interval x "
               "recovery policy ===\n    (ResNet-50 @96^2, MSTopK-SGD, 16x8 "
               "Tencent Cloud, "
            << iterations << " iterations)\n\n";
  const auto topo = simnet::Topology::tencent_cloud(16, 8);

  const double rates[] = {0.5, 2.0, 8.0};
  const int intervals[] = {50, 200, 1000};
  const std::pair<RecoveryPolicy, const char*> policies[] = {
      {RecoveryPolicy::kAbortRestart, "abort-restart"},
      {RecoveryPolicy::kElasticContinue, "elastic-continue"},
  };

  std::vector<Row> rows;
  for (const double rate : rates) {
    for (const int interval : intervals) {
      for (const auto& [policy, policy_name] : policies) {
        ScenarioOptions options;
        options.trainer.model = "resnet50";
        options.trainer.resolution = 96;
        options.iterations = iterations;
        options.preempt_rate_per_node_hour = rate;
        options.node_return_seconds = 600.0;
        options.checkpoint_interval = interval;
        options.policy = policy;
        options.seed = seed;
        Row row;
        row.rate = rate;
        row.interval = interval;
        row.policy = policy_name;
        row.result = simulate_scenario(topo, options);
        rows.push_back(row);
      }
    }
  }

  TablePrinter table({"Rate/node-h", "Ckpt every", "Policy", "Goodput frac",
                      "Lost work", "MTTR (s)", "Preempt", "Min nodes"});
  for (const Row& r : rows) {
    table.add_row({TablePrinter::fmt(r.rate, 1), std::to_string(r.interval),
                   r.policy, TablePrinter::fmt(r.result.goodput_fraction, 3),
                   TablePrinter::fmt(r.result.lost_work_fraction, 3),
                   TablePrinter::fmt(r.result.mean_time_to_recover, 1),
                   std::to_string(r.result.preemptions),
                   std::to_string(r.result.min_world_nodes)});
  }
  table.print(std::cout);

  // ---- checkpoint-interval sweep at a fixed rate, size-derived write cost
  const double sweep_rate = 2.0;
  const int sweep_intervals[] = {25, 50, 100, 200, 400, 1000};
  std::vector<Row> sweep_rows;
  for (const int interval : sweep_intervals) {
    for (const auto& [policy, policy_name] : policies) {
      ScenarioOptions options;
      options.trainer.model = "resnet50";
      options.trainer.resolution = 96;
      options.iterations = iterations;
      options.preempt_rate_per_node_hour = sweep_rate;
      options.node_return_seconds = 600.0;
      options.checkpoint_interval = interval;
      options.checkpoint_write_gbps = ckpt_gbps;
      options.policy = policy;
      options.seed = seed;
      Row row;
      row.rate = sweep_rate;
      row.interval = interval;
      row.policy = policy_name;
      row.result = simulate_scenario(topo, options);
      sweep_rows.push_back(row);
    }
  }
  std::cout << "\n--- checkpoint-interval sweep (rate "
            << TablePrinter::fmt(sweep_rate, 1) << "/node-h, write cost = "
            << "state size / " << TablePrinter::fmt(ckpt_gbps, 1)
            << " GB/s) ---\n";
  TablePrinter sweep_table({"Ckpt every", "Policy", "Goodput frac",
                            "Lost work", "Ckpt overhead", "Wall (s)"});
  for (const Row& r : sweep_rows) {
    sweep_table.add_row(
        {std::to_string(r.interval), r.policy,
         TablePrinter::fmt(r.result.goodput_fraction, 3),
         TablePrinter::fmt(r.result.lost_work_fraction, 3),
         TablePrinter::fmt(r.result.checkpoint_overhead_fraction, 4),
         TablePrinter::fmt(r.result.wall_seconds, 1)});
  }
  sweep_table.print(std::cout);

  std::cout << "\nExpected: abort-restart's best checkpoint interval "
               "shortens as the preemption rate\ngrows (and it thrashes "
               "when rollback + restart approaches the MTBF); elastic-\n"
               "continue never rolls back, so it always prefers long "
               "intervals and degrades only\nwith the surviving world "
               "size.\n";

  if (!json_path.empty()) {
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json != nullptr) {
      std::fprintf(json,
                   "{\n  \"bench\": \"fig11_faults\",\n  \"sim\": {\n"
                   "    \"cluster\": \"16x8\",\n    \"iterations\": %d,\n"
                   "    \"seed\": %llu,\n    \"rows\": [\n",
                   iterations, static_cast<unsigned long long>(seed));
      for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        const ScenarioResult& s = r.result;
        std::fprintf(
            json,
            "      {\"rate_per_node_hour\": %.9g, \"checkpoint_interval\": "
            "%d, \"policy\": \"%s\", \"goodput\": %.9g, "
            "\"goodput_fraction\": %.9g, \"lost_work_fraction\": %.9g, "
            "\"mean_time_to_recover\": %.9g, \"wall\": %.9g, "
            "\"preemptions\": %d, \"restarts\": %d, \"rescales\": %d, "
            "\"min_world_nodes\": %d}%s\n",
            r.rate, r.interval, r.policy, s.goodput, s.goodput_fraction,
            s.lost_work_fraction, s.mean_time_to_recover, s.wall_seconds,
            s.preemptions, s.restarts, s.rescales, s.min_world_nodes,
            i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(json,
                   "    ],\n    \"interval_sweep\": {\n"
                   "      \"rate_per_node_hour\": %.9g,\n"
                   "      \"checkpoint_write_gbps\": %.9g,\n"
                   "      \"rows\": [\n",
                   sweep_rate, ckpt_gbps);
      for (size_t i = 0; i < sweep_rows.size(); ++i) {
        const Row& r = sweep_rows[i];
        const ScenarioResult& s = r.result;
        std::fprintf(
            json,
            "        {\"checkpoint_interval\": %d, \"policy\": \"%s\", "
            "\"goodput_fraction\": %.9g, \"lost_work_fraction\": %.9g, "
            "\"checkpoint_overhead_fraction\": %.9g, \"wall\": %.9g, "
            "\"preemptions\": %d}%s\n",
            r.interval, r.policy, s.goodput_fraction, s.lost_work_fraction,
            s.checkpoint_overhead_fraction, s.wall_seconds, s.preemptions,
            i + 1 < sweep_rows.size() ? "," : "");
      }
      std::fprintf(json, "      ]\n    }\n  }\n}\n");
      std::fclose(json);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
