// Fig. 10: convergence (held-out top-5 accuracy vs epoch) of Dense-SGD,
// TopK-SGD, and MSTopK-SGD on the two CNN workloads.
//
// Substitution (DESIGN.md): real distributed SGD on synthetic Gaussian-
// mixture classification stands in for ImageNet CNNs — per-worker gradients
// are real, compression and error feedback are real, and aggregation goes
// through the functional collectives (ring AR / NaiveAG / HiTopKComm).
// Expected shape: the three curves are nearly identical, with the sparse
// variants a hair below dense (Table 2).
#include <chrono>
#include <iostream>

#include "core/table.h"
#include "train/convergence.h"
#include "train/synthetic.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Fig. 10: convergence of Dense/TopK/MSTopK-SGD "
               "(16 simulated workers, rho=0.01) ===\n";
  std::cout << "(synthetic stand-in tasks; see DESIGN.md substitutions)\n\n";

  const ConvergenceAlgorithm algorithms[] = {ConvergenceAlgorithm::kDense,
                                             ConvergenceAlgorithm::kTopk,
                                             ConvergenceAlgorithm::kMstopk};
  struct TaskSpec {
    const char* label;
    const char* proxy_name;
    std::vector<size_t> hidden;
  };
  const TaskSpec tasks[] = {
      {"(a) ResNet-50 proxy", "resnet50-proxy", {96, 64}},
      {"(b) VGG-19 proxy", "vgg19-proxy", {128}},
  };

  const int epochs = 30;
  for (const auto& spec : tasks) {
    std::cout << "\n--- " << spec.label << " (top-5 accuracy vs epoch) ---\n";
    std::vector<ConvergenceResult> results;
    std::vector<double> seconds;
    for (const auto algorithm : algorithms) {
      auto task = make_vision_task(1234, spec.proxy_name, spec.hidden);
      ConvergenceOptions options;
      options.algorithm = algorithm;
      options.epochs = epochs;
      options.density = 0.01;
      options.seed = 99;
      const auto start = std::chrono::steady_clock::now();
      results.push_back(run_convergence(*task, options));
      seconds.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    TablePrinter table({"Epoch", "Dense-SGD", "TopK-SGD", "MSTopK-SGD"});
    for (int e = 0; e < epochs; e += (e < 10 ? 1 : 2)) {
      table.add_row({std::to_string(e + 1),
                     TablePrinter::fmt_percent(results[0].curve[e].quality),
                     TablePrinter::fmt_percent(results[1].curve[e].quality),
                     TablePrinter::fmt_percent(results[2].curve[e].quality)});
    }
    table.print(std::cout);
    std::cout << "final: dense="
              << TablePrinter::fmt_percent(results[0].final_quality)
              << " topk=" << TablePrinter::fmt_percent(results[1].final_quality)
              << " mstopk="
              << TablePrinter::fmt_percent(results[2].final_quality) << "\n";
    std::cout << "harness wall time: dense=" << TablePrinter::fmt(seconds[0], 2)
              << "s topk=" << TablePrinter::fmt(seconds[1], 2)
              << "s mstopk=" << TablePrinter::fmt(seconds[2], 2) << "s\n";
  }
  std::cout << "\nExpected: near-identical curves; sparse variants within a "
               "point or two of dense at the end (Table 2).\n";
  return 0;
}
