// Fig. 10: convergence (held-out top-5 accuracy vs epoch) of Dense-SGD,
// TopK-SGD, and MSTopK-SGD on the two CNN workloads.
//
// Substitution (DESIGN.md): real distributed SGD on synthetic Gaussian-
// mixture classification stands in for ImageNet CNNs — per-worker gradients
// are real, compression and error feedback are real, and aggregation goes
// through the functional collectives (ring AR / NaiveAG / HiTopKComm).
// Expected shape: the three curves are nearly identical, with the sparse
// variants a hair below dense (Table 2).
//
// The --panel=faults variant is the fault-convergence panel instead: the
// same compressed-SGD training run under a seeded Poisson preemption script,
// once per recovery policy — elastic-continue (shrink and regrow the world),
// abort-restart (roll back to the newest valid checkpoint), and LTFB
// tournament training (independent populations exchanging candidate models)
// — against the fault-free baseline.  Every number it emits is a
// deterministic function of the seeds (simulated clocks, seeded fault
// scripts), so the whole JSON sits under a "sim" subtree and CI pins it to
// the reference at 1e-6 relative (bench/refs/BENCH_fig10_faults.json).
//
// Flags (docs/REPRODUCING.md):
//   --panel=convergence|faults   which panel to run (default convergence)
//   --epochs=N          epochs per run (default 30; faults panel 6)
//   --softmax=float|double   Tape softmax precision (default float; double
//                            is the reference path, see SoftmaxMode)
//   --select=histogram|nth   exact top-k backend for TopK-SGD (bit-identical
//                            outputs; nth is the timing reference)
//   --json=PATH         machine-readable results (default BENCH_fig10.json;
//                       empty string disables)
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "autodiff/tape.h"
#include "core/flags.h"
#include "core/table.h"
#include "simnet/fault.h"
#include "train/convergence.h"
#include "train/ft_convergence.h"
#include "train/ltfb.h"
#include "train/synthetic.h"

namespace {

using hitopk::TablePrinter;
using namespace hitopk::train;

// --panel=faults: fault-free vs elastic-continue vs abort-restart vs LTFB
// under one seeded preemption script on a 2x2 world (LTFB: 2 populations
// of 1x2, same four global workers).
int run_faults_panel(const hitopk::Flags& flags) {
  const int epochs = flags.get_int("epochs", 6);
  const uint64_t train_seed =
      static_cast<uint64_t>(flags.get_int("seed", 99));
  const uint64_t fault_seed =
      static_cast<uint64_t>(flags.get_int("fault_seed", 4242));
  const std::string json_path = flags.get("json", "BENCH_fig10_faults.json");

  ConvergenceOptions training;
  training.algorithm = ConvergenceAlgorithm::kTopk;
  training.nodes = 2;
  training.gpus_per_node = 2;
  training.local_batch = 32;
  training.epochs = epochs;
  training.density = 0.05;
  training.seed = train_seed;

  FtOptions base;
  base.training = training;
  base.checkpoint_interval = 25;
  base.checkpoint_write_gbps = 1.0;
  base.compute_seconds_per_iter = 0.05;
  base.restart_seconds = 5.0;

  // The seeded Poisson script, at global worker granularity.  The horizon
  // and rate are sized so a handful of revocations land inside the run.
  const auto fault_topo = hitopk::simnet::Topology::tencent_cloud(2, 2);
  hitopk::simnet::FaultRates rates;
  rates.preempt_per_rank_hour = 120.0;
  rates.recover_seconds = 8.0;
  const double horizon = 60.0;
  const auto plan = hitopk::simnet::FaultPlan::generate(fault_seed, fault_topo,
                                                        horizon, rates);

  std::cout << "=== Fig. 10 (fault panel): recovery policy under seeded "
               "preemption ===\n    (TopK-SGD, 2x2 workers, "
            << epochs << " epochs, " << plan.preemptions().size()
            << " scripted revocations over " << horizon << "s)\n\n";

  struct Row {
    const char* policy = "";
    double final_quality = 0.0;
    double best_quality = 0.0;
    double wall = 0.0;
    double checkpoint_seconds = 0.0;
    int preemptions = 0;
    int regrows = 0;
    int restores = 0;
    int lost_iterations = 0;
    int exchanges = 0;
    int forfeits = 0;
  };
  std::vector<Row> rows;

  auto run_ft = [&](const char* name, RecoveryPolicy policy, bool faulted) {
    auto task = make_vision_task(1234);
    FtOptions options = base;
    options.policy = policy;
    if (faulted) options.faults = plan;
    const FtResult result = run_convergence_ft(*task, options);
    Row row;
    row.policy = name;
    row.final_quality = result.convergence.final_quality;
    row.best_quality = result.convergence.best_quality;
    row.wall = result.wall_seconds;
    row.checkpoint_seconds = result.checkpoint_seconds_total;
    row.preemptions = result.preemptions;
    row.regrows = result.regrows;
    row.restores = result.restores;
    row.lost_iterations = result.lost_iterations;
    rows.push_back(row);
  };
  run_ft("fault-free", RecoveryPolicy::kElasticContinue, false);
  run_ft("elastic-continue", RecoveryPolicy::kElasticContinue, true);
  run_ft("abort-restart", RecoveryPolicy::kAbortRestart, true);

  {
    LtfbOptions options;
    options.training = training;
    options.training.nodes = 1;  // two populations of one node each
    options.populations = 2;
    options.round_epochs = epochs % 2 == 0 ? 2 : 1;
    options.faults = plan;
    options.compute_seconds_per_iter = base.compute_seconds_per_iter;
    const LtfbResult result =
        run_ltfb([](int) { return make_vision_task(1234); }, options);
    Row row;
    row.policy = "ltfb";
    row.final_quality = result.best_quality;
    row.best_quality = result.best_quality;
    row.wall = result.wall_seconds;
    row.preemptions = result.preemptions;
    row.regrows = result.regrows;
    row.exchanges = result.exchanges;
    row.forfeits = result.forfeits;
    rows.push_back(row);
  }

  TablePrinter table({"Policy", "Final qual", "Best qual", "Sim wall (s)",
                      "Ckpt (s)", "Preempt", "Regrow", "Restart", "Lost it",
                      "Exchg"});
  for (const Row& r : rows) {
    table.add_row({r.policy, TablePrinter::fmt_percent(r.final_quality),
                   TablePrinter::fmt_percent(r.best_quality),
                   TablePrinter::fmt(r.wall, 2),
                   TablePrinter::fmt(r.checkpoint_seconds, 3),
                   std::to_string(r.preemptions), std::to_string(r.regrows),
                   std::to_string(r.restores),
                   std::to_string(r.lost_iterations),
                   std::to_string(r.exchanges)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: elastic-continue matches the fault-free quality "
               "at a modest wall\npenalty (no rollback); abort-restart pays "
               "re-provision + lost iterations per\nrevocation; LTFB rides "
               "out partial population loss and still plays every\n"
               "exchange it can.\n";

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (json) {
      json << std::setprecision(12);
      json << "{\n  \"bench\": \"fig10_faults\",\n  \"sim\": {\n"
           << "    \"epochs\": " << epochs << ",\n    \"train_seed\": "
           << train_seed << ",\n    \"fault_seed\": " << fault_seed
           << ",\n    \"world\": 4,\n    \"scripted_preemptions\": "
           << plan.preemptions().size() << ",\n    \"rows\": [\n";
      for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        json << "      {\"policy\": \"" << r.policy << "\", \"final_quality\": "
             << r.final_quality << ", \"best_quality\": " << r.best_quality
             << ", \"wall\": " << r.wall << ", \"checkpoint_cost\": "
             << r.checkpoint_seconds << ", \"preemptions\": " << r.preemptions
             << ", \"regrows\": " << r.regrows << ", \"restores\": "
             << r.restores << ", \"lost_iterations\": " << r.lost_iterations
             << ", \"exchanges\": " << r.exchanges << ", \"forfeits\": "
             << r.forfeits << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
      }
      json << "    ]\n  }\n}\n";
      std::cout << "wrote " << json_path << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  const hitopk::Flags flags(argc, argv);
  if (flags.get("panel", "convergence") == "faults") {
    return run_faults_panel(flags);
  }
  const int epochs = flags.get_int("epochs", 30);
  const std::string softmax = flags.get("softmax", "float");
  hitopk::ad::set_softmax_mode(softmax == "double"
                                   ? hitopk::ad::SoftmaxMode::kDouble
                                   : hitopk::ad::SoftmaxMode::kFloat);
  const bool topk_histogram = flags.get("select", "histogram") != "nth";
  const std::string json_path = flags.get("json", "BENCH_fig10.json");

  std::cout << "=== Fig. 10: convergence of Dense/TopK/MSTopK-SGD "
               "(16 simulated workers, rho=0.01) ===\n";
  std::cout << "(synthetic stand-in tasks; see DESIGN.md substitutions; "
               "softmax=" << softmax
            << " select=" << (topk_histogram ? "histogram" : "nth") << ")\n\n";

  const ConvergenceAlgorithm algorithms[] = {ConvergenceAlgorithm::kDense,
                                             ConvergenceAlgorithm::kTopk,
                                             ConvergenceAlgorithm::kMstopk};
  const char* algorithm_labels[] = {"Dense-SGD", "TopK-SGD", "MSTopK-SGD"};
  struct TaskSpec {
    const char* label;
    const char* proxy_name;
    std::vector<size_t> hidden;
  };
  const TaskSpec tasks[] = {
      {"(a) ResNet-50 proxy", "resnet50-proxy", {96, 64}},
      {"(b) VGG-19 proxy", "vgg19-proxy", {128}},
  };

  std::ofstream json;
  if (!json_path.empty()) json.open(json_path);
  if (json) {
    json << "{\n  \"bench\": \"fig10_convergence\",\n  \"softmax\": \""
         << softmax << "\",\n  \"select\": \""
         << (topk_histogram ? "histogram" : "nth")
         << "\",\n  \"epochs\": " << epochs << ",\n  \"tasks\": [\n";
  }

  for (size_t t = 0; t < std::size(tasks); ++t) {
    const TaskSpec& spec = tasks[t];
    std::cout << "\n--- " << spec.label << " (top-5 accuracy vs epoch) ---\n";
    std::vector<ConvergenceResult> results;
    std::vector<double> seconds;
    for (const auto algorithm : algorithms) {
      auto task = make_vision_task(1234, spec.proxy_name, spec.hidden);
      ConvergenceOptions options;
      options.algorithm = algorithm;
      options.epochs = epochs;
      options.density = 0.01;
      options.seed = 99;
      options.topk_histogram = topk_histogram;
      const auto start = std::chrono::steady_clock::now();
      results.push_back(run_convergence(*task, options));
      seconds.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    TablePrinter table({"Epoch", "Dense-SGD", "TopK-SGD", "MSTopK-SGD"});
    for (int e = 0; e < epochs; e += (e < 10 ? 1 : 2)) {
      table.add_row({std::to_string(e + 1),
                     TablePrinter::fmt_percent(results[0].curve[e].quality),
                     TablePrinter::fmt_percent(results[1].curve[e].quality),
                     TablePrinter::fmt_percent(results[2].curve[e].quality)});
    }
    table.print(std::cout);
    std::cout << "final: dense="
              << TablePrinter::fmt_percent(results[0].final_quality)
              << " topk=" << TablePrinter::fmt_percent(results[1].final_quality)
              << " mstopk="
              << TablePrinter::fmt_percent(results[2].final_quality) << "\n";
    std::cout << "harness wall time: dense=" << TablePrinter::fmt(seconds[0], 2)
              << "s topk=" << TablePrinter::fmt(seconds[1], 2)
              << "s mstopk=" << TablePrinter::fmt(seconds[2], 2) << "s\n";
    std::cout << "wall-time ratio vs dense: topk="
              << TablePrinter::fmt(seconds[1] / seconds[0], 2)
              << "x mstopk=" << TablePrinter::fmt(seconds[2] / seconds[0], 2)
              << "x\n";

    if (json) {
      json << "    {\n      \"task\": \"" << spec.proxy_name
           << "\",\n      \"algorithms\": [\n";
      for (size_t a = 0; a < results.size(); ++a) {
        json << "        {\"name\": \"" << algorithm_labels[a]
             << "\", \"wall_seconds\": " << seconds[a]
             << ", \"final_quality\": " << results[a].final_quality
             << ", \"best_quality\": " << results[a].best_quality
             << ", \"sim_comm_seconds\": "
             << results[a].simulated_comm_seconds << ",\n         \"curve\": [";
        for (size_t e = 0; e < results[a].curve.size(); ++e) {
          json << (e ? ", " : "") << results[a].curve[e].quality;
        }
        json << "]}" << (a + 1 < results.size() ? "," : "") << "\n";
      }
      json << "      ],\n      \"topk_over_dense_wall\": "
           << seconds[1] / seconds[0] << ",\n      \"mstopk_over_dense_wall\": "
           << seconds[2] / seconds[0] << "\n    }"
           << (t + 1 < std::size(tasks) ? "," : "") << "\n";
    }
  }
  if (json) {
    json << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  std::cout << "\nExpected: near-identical curves; sparse variants within a "
               "point or two of dense at the end (Table 2).\n";
  return 0;
}
