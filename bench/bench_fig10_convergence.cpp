// Fig. 10: convergence (held-out top-5 accuracy vs epoch) of Dense-SGD,
// TopK-SGD, and MSTopK-SGD on the two CNN workloads.
//
// Substitution (DESIGN.md): real distributed SGD on synthetic Gaussian-
// mixture classification stands in for ImageNet CNNs — per-worker gradients
// are real, compression and error feedback are real, and aggregation goes
// through the functional collectives (ring AR / NaiveAG / HiTopKComm).
// Expected shape: the three curves are nearly identical, with the sparse
// variants a hair below dense (Table 2).
//
// Flags (docs/REPRODUCING.md):
//   --epochs=N          epochs per run (default 30)
//   --softmax=float|double   Tape softmax precision (default float; double
//                            is the reference path, see SoftmaxMode)
//   --select=histogram|nth   exact top-k backend for TopK-SGD (bit-identical
//                            outputs; nth is the timing reference)
//   --json=PATH         machine-readable results (default BENCH_fig10.json;
//                       empty string disables)
#include <chrono>
#include <fstream>
#include <iostream>

#include "autodiff/tape.h"
#include "core/flags.h"
#include "core/table.h"
#include "train/convergence.h"
#include "train/synthetic.h"

int main(int argc, char** argv) {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  const hitopk::Flags flags(argc, argv);
  const int epochs = flags.get_int("epochs", 30);
  const std::string softmax = flags.get("softmax", "float");
  hitopk::ad::set_softmax_mode(softmax == "double"
                                   ? hitopk::ad::SoftmaxMode::kDouble
                                   : hitopk::ad::SoftmaxMode::kFloat);
  const bool topk_histogram = flags.get("select", "histogram") != "nth";
  const std::string json_path = flags.get("json", "BENCH_fig10.json");

  std::cout << "=== Fig. 10: convergence of Dense/TopK/MSTopK-SGD "
               "(16 simulated workers, rho=0.01) ===\n";
  std::cout << "(synthetic stand-in tasks; see DESIGN.md substitutions; "
               "softmax=" << softmax
            << " select=" << (topk_histogram ? "histogram" : "nth") << ")\n\n";

  const ConvergenceAlgorithm algorithms[] = {ConvergenceAlgorithm::kDense,
                                             ConvergenceAlgorithm::kTopk,
                                             ConvergenceAlgorithm::kMstopk};
  const char* algorithm_labels[] = {"Dense-SGD", "TopK-SGD", "MSTopK-SGD"};
  struct TaskSpec {
    const char* label;
    const char* proxy_name;
    std::vector<size_t> hidden;
  };
  const TaskSpec tasks[] = {
      {"(a) ResNet-50 proxy", "resnet50-proxy", {96, 64}},
      {"(b) VGG-19 proxy", "vgg19-proxy", {128}},
  };

  std::ofstream json;
  if (!json_path.empty()) json.open(json_path);
  if (json) {
    json << "{\n  \"bench\": \"fig10_convergence\",\n  \"softmax\": \""
         << softmax << "\",\n  \"select\": \""
         << (topk_histogram ? "histogram" : "nth")
         << "\",\n  \"epochs\": " << epochs << ",\n  \"tasks\": [\n";
  }

  for (size_t t = 0; t < std::size(tasks); ++t) {
    const TaskSpec& spec = tasks[t];
    std::cout << "\n--- " << spec.label << " (top-5 accuracy vs epoch) ---\n";
    std::vector<ConvergenceResult> results;
    std::vector<double> seconds;
    for (const auto algorithm : algorithms) {
      auto task = make_vision_task(1234, spec.proxy_name, spec.hidden);
      ConvergenceOptions options;
      options.algorithm = algorithm;
      options.epochs = epochs;
      options.density = 0.01;
      options.seed = 99;
      options.topk_histogram = topk_histogram;
      const auto start = std::chrono::steady_clock::now();
      results.push_back(run_convergence(*task, options));
      seconds.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    TablePrinter table({"Epoch", "Dense-SGD", "TopK-SGD", "MSTopK-SGD"});
    for (int e = 0; e < epochs; e += (e < 10 ? 1 : 2)) {
      table.add_row({std::to_string(e + 1),
                     TablePrinter::fmt_percent(results[0].curve[e].quality),
                     TablePrinter::fmt_percent(results[1].curve[e].quality),
                     TablePrinter::fmt_percent(results[2].curve[e].quality)});
    }
    table.print(std::cout);
    std::cout << "final: dense="
              << TablePrinter::fmt_percent(results[0].final_quality)
              << " topk=" << TablePrinter::fmt_percent(results[1].final_quality)
              << " mstopk="
              << TablePrinter::fmt_percent(results[2].final_quality) << "\n";
    std::cout << "harness wall time: dense=" << TablePrinter::fmt(seconds[0], 2)
              << "s topk=" << TablePrinter::fmt(seconds[1], 2)
              << "s mstopk=" << TablePrinter::fmt(seconds[2], 2) << "s\n";
    std::cout << "wall-time ratio vs dense: topk="
              << TablePrinter::fmt(seconds[1] / seconds[0], 2)
              << "x mstopk=" << TablePrinter::fmt(seconds[2] / seconds[0], 2)
              << "x\n";

    if (json) {
      json << "    {\n      \"task\": \"" << spec.proxy_name
           << "\",\n      \"algorithms\": [\n";
      for (size_t a = 0; a < results.size(); ++a) {
        json << "        {\"name\": \"" << algorithm_labels[a]
             << "\", \"wall_seconds\": " << seconds[a]
             << ", \"final_quality\": " << results[a].final_quality
             << ", \"best_quality\": " << results[a].best_quality
             << ", \"sim_comm_seconds\": "
             << results[a].simulated_comm_seconds << ",\n         \"curve\": [";
        for (size_t e = 0; e < results[a].curve.size(); ++e) {
          json << (e ? ", " : "") << results[a].curve[e].quality;
        }
        json << "]}" << (a + 1 < results.size() ? "," : "") << "\n";
      }
      json << "      ],\n      \"topk_over_dense_wall\": "
           << seconds[1] / seconds[0] << ",\n      \"mstopk_over_dense_wall\": "
           << seconds[2] / seconds[0] << "\n    }"
           << (t + 1 < std::size(tasks) ? "," : "") << "\n";
    }
  }
  if (json) {
    json << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  std::cout << "\nExpected: near-identical curves; sparse variants within a "
               "point or two of dense at the end (Table 2).\n";
  return 0;
}
