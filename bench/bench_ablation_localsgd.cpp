// Ablation: local SGD (periodic model averaging) vs gradient compression —
// two orthogonal ways to cut communication.  Sweeps the synchronization
// period H and compares against MSTopK-SGD at matched communication budget.
#include <iostream>

#include "core/table.h"
#include "train/convergence.h"
#include "train/synthetic.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Ablation: local SGD period vs top-k compression "
               "(vision proxy, 16 workers, 15 epochs) ===\n\n";

  TablePrinter table({"Scheme", "Final top-5", "Comm (sim s)",
                      "Syncs per epoch"});
  const int epochs = 15;
  for (const int period : {1, 2, 4, 8, 16}) {
    auto task = make_vision_task(808);
    ConvergenceOptions options;
    options.algorithm = ConvergenceAlgorithm::kLocalSgd;
    options.local_sgd_period = period;
    options.epochs = epochs;
    const auto result = run_convergence(*task, options);
    table.add_row({"LocalSGD H=" + std::to_string(period),
                   TablePrinter::fmt_percent(result.final_quality),
                   TablePrinter::fmt(result.simulated_comm_seconds, 3),
                   TablePrinter::fmt(64.0 / period, 0)});
  }
  for (const auto& [label, algorithm, density] :
       {std::tuple{"Dense-SGD", ConvergenceAlgorithm::kDense, 0.01},
        std::tuple{"MSTopK-SGD rho=0.01", ConvergenceAlgorithm::kMstopk,
                   0.01}}) {
    auto task = make_vision_task(808);
    ConvergenceOptions options;
    options.algorithm = algorithm;
    options.density = density;
    options.epochs = epochs;
    const auto result = run_convergence(*task, options);
    table.add_row({label, TablePrinter::fmt_percent(result.final_quality),
                   TablePrinter::fmt(result.simulated_comm_seconds, 3), "64"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: quality degrades as H grows (stale local "
               "models), while MSTopK-SGD cuts\ncommunication further at "
               "the same per-iteration synchronization semantics.\n";
  return 0;
}
