// Fig. 8: HiTopKComm per-step time breakdown (ReduceScatter / MSTopK /
// inter-node AllGather / intra-node AllGather) at densities
// {0.001, 0.002, 0.01, 0.02}, for (a) ResNet-50 (25 M parameters) and
// (b) Transformer (110 M parameters), FP32 values.
//
// Expected shape: the inter-node All-Gather dominates; MSTopK is
// negligible; both intra-node steps are small (NVLink).
#include <iostream>

#include "collectives/hitopkcomm.h"
#include "core/table.h"
#include "simgpu/gpu_model.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::coll;
  using hitopk::simnet::Cluster;
  using hitopk::simnet::Topology;

  std::cout << "=== Fig. 8: HiTopKComm step breakdown (16x8 cluster, FP32 "
               "values) ===\n\n";
  const Topology topo = Topology::tencent_cloud(16, 8);
  const hitopk::simgpu::GpuCostModel gpu;

  TablePrinter table({"Model", "Density", "ReduceScatter", "MSTopK",
                      "Inter-AllGather", "Intra-AllGather", "Total (s)"});
  struct Workload {
    const char* label;
    size_t params;
  };
  for (const Workload w : {Workload{"(a) ResNet-50", 25'000'000},
                           Workload{"(b) Transformer", 110'000'000}}) {
    for (const double density : {0.001, 0.002, 0.01, 0.02}) {
      Cluster cluster(topo);
      HiTopKOptions options;
      options.density = density;
      options.value_wire = WireDtype::kFp32;
      options.gpu = &gpu;
      const auto b = hitopk_comm(cluster, {}, w.params, options, 0.0);
      table.add_row({w.label, TablePrinter::fmt(density, 3),
                     TablePrinter::fmt(b.reduce_scatter, 4),
                     TablePrinter::fmt(b.mstopk, 4),
                     TablePrinter::fmt(b.inter_allgather, 4),
                     TablePrinter::fmt(b.intra_allgather, 4),
                     TablePrinter::fmt(b.total, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: Inter-AllGather dominates and grows with "
               "density; MSTopK stays negligible.\n";

  // Quantized wire panel: the same breakdown at density 0.01 with the
  // selected values crossing fp16 / int8 wires.  The AllGather legs carry
  // (index, value) pairs, so shrinking the value payload compresses only
  // part of each pair — the step times shrink, but less than 2x / 4x.
  std::cout << "\n=== Quantized value wire (density 0.01) ===\n\n";
  TablePrinter qtable({"Model", "Wire", "ReduceScatter", "MSTopK",
                       "Inter-AllGather", "Intra-AllGather", "Total (s)"});
  for (const Workload w : {Workload{"(a) ResNet-50", 25'000'000},
                           Workload{"(b) Transformer", 110'000'000}}) {
    for (const WireDtype wire :
         {WireDtype::kFp32, WireDtype::kFp16, WireDtype::kInt8}) {
      Cluster cluster(topo);
      HiTopKOptions options;
      options.density = 0.01;
      options.value_wire = wire;
      options.gpu = &gpu;
      const auto b = hitopk_comm(cluster, {}, w.params, options, 0.0);
      qtable.add_row({w.label, wire_dtype_name(wire),
                      TablePrinter::fmt(b.reduce_scatter, 4),
                      TablePrinter::fmt(b.mstopk, 4),
                      TablePrinter::fmt(b.inter_allgather, 4),
                      TablePrinter::fmt(b.intra_allgather, 4),
                      TablePrinter::fmt(b.total, 4)});
    }
  }
  qtable.print(std::cout);
  std::cout << "\nValues are half the pair on the wire, so fp16 trims the "
               "AllGather legs by ~25%.\n";
  return 0;
}
