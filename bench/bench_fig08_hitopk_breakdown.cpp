// Fig. 8: HiTopKComm per-step time breakdown (ReduceScatter / MSTopK /
// inter-node AllGather / intra-node AllGather) at densities
// {0.001, 0.002, 0.01, 0.02}, for (a) ResNet-50 (25 M parameters) and
// (b) Transformer (110 M parameters), FP32 values.
//
// Expected shape: the inter-node All-Gather dominates; MSTopK is
// negligible; both intra-node steps are small (NVLink).
#include <iostream>

#include "collectives/hitopkcomm.h"
#include "core/table.h"
#include "simgpu/gpu_model.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::coll;
  using hitopk::simnet::Cluster;
  using hitopk::simnet::Topology;

  std::cout << "=== Fig. 8: HiTopKComm step breakdown (16x8 cluster, FP32 "
               "values) ===\n\n";
  const Topology topo = Topology::tencent_cloud(16, 8);
  const hitopk::simgpu::GpuCostModel gpu;

  TablePrinter table({"Model", "Density", "ReduceScatter", "MSTopK",
                      "Inter-AllGather", "Intra-AllGather", "Total (s)"});
  struct Workload {
    const char* label;
    size_t params;
  };
  for (const Workload w : {Workload{"(a) ResNet-50", 25'000'000},
                           Workload{"(b) Transformer", 110'000'000}}) {
    for (const double density : {0.001, 0.002, 0.01, 0.02}) {
      Cluster cluster(topo);
      HiTopKOptions options;
      options.density = density;
      options.value_wire_bytes = 4;  // FP32 per the figure
      options.gpu = &gpu;
      const auto b = hitopk_comm(cluster, {}, w.params, options, 0.0);
      table.add_row({w.label, TablePrinter::fmt(density, 3),
                     TablePrinter::fmt(b.reduce_scatter, 4),
                     TablePrinter::fmt(b.mstopk, 4),
                     TablePrinter::fmt(b.inter_allgather, 4),
                     TablePrinter::fmt(b.intra_allgather, 4),
                     TablePrinter::fmt(b.total, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: Inter-AllGather dominates and grows with "
               "density; MSTopK stays negligible.\n";
  return 0;
}
