// Fig. 7: gradient aggregation time of NaiveAG, TreeAR, 2DTAR, and
// HiTopKComm on the 16x8 Tencent Cloud cluster, FP16 payloads, sparse
// density rho = 0.01.  Panel (a): 1-15 M elements; panel (b): 50-250 M.
//
// Expected shape: NaiveAG worst (flat world-scale sparse All-Gather),
// TreeAR next (flat tree over the slow NICs), 2DTAR better (hierarchical
// dense), HiTopKComm best.
#include <iostream>

#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/torus2d.h"
#include "collectives/tree_allreduce.h"
#include "core/table.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::coll;
  using hitopk::simnet::Cluster;
  using hitopk::simnet::Topology;

  std::cout << "=== Fig. 7: aggregation time (16 nodes x 8 GPUs, FP16, "
               "rho=0.01) ===\n\n";
  const Topology topo = Topology::tencent_cloud(16, 8);
  const size_t fp16 = 2;
  const double density = 0.01;

  TablePrinter table({"Panel", "Elements", "NaiveAG", "TreeAR", "2DTAR",
                      "HiTopKComm", "best/worst"});
  const size_t small[] = {1u << 20, 2u << 20, 5u << 20, 10u << 20, 15u << 20};
  const size_t large[] = {50u << 20, 100u << 20, 150u << 20, 200u << 20,
                          250u << 20};

  auto run_panel = [&](const char* panel, std::span<const size_t> sizes) {
    for (size_t elems : sizes) {
      Cluster c_naive(topo);
      const double naive =
          naive_sparse_allgather_time(
              c_naive,
              static_cast<size_t>(density * static_cast<double>(elems)), fp16,
              0.0, 0.0)
              .total;
      Cluster c_tree(topo);
      TreeOptions tree_options;
      tree_options.wire_bytes = fp16;
      const double tree = tree_allreduce(c_tree, world_group(topo), {}, elems,
                                         tree_options, 0.0);
      Cluster c_torus(topo);
      const double torus = torus2d_allreduce(c_torus, {}, elems, fp16, 0.0).total;
      Cluster c_hitopk(topo);
      HiTopKOptions options;
      options.density = density;
      options.value_wire_bytes = fp16;
      const double hitopk = hitopk_comm(c_hitopk, {}, elems, options, 0.0).total;
      table.add_row({panel, std::to_string(elems >> 20) + "M",
                     TablePrinter::fmt(naive, 4), TablePrinter::fmt(tree, 4),
                     TablePrinter::fmt(torus, 4), TablePrinter::fmt(hitopk, 4),
                     TablePrinter::fmt(naive / hitopk, 1) + "x"});
    }
  };
  run_panel("(a) small", small);
  run_panel("(b) large", large);
  table.print(std::cout);
  std::cout << "\nExpected ordering: HiTopKComm < 2DTAR < TreeAR < NaiveAG "
               "(TreeAR converges\ntoward NaiveAG at the largest sizes, "
               "where both are NIC-bandwidth-bound).\n";
  return 0;
}
