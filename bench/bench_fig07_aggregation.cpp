// Fig. 7: gradient aggregation time of NaiveAG, TreeAR, 2DTAR, and
// HiTopKComm on the 16x8 Tencent Cloud cluster, FP16 payloads, sparse
// density rho = 0.01.  Panel (a): 1-15 M elements; panel (b): 50-250 M.
//
// Expected shape: NaiveAG worst (flat world-scale sparse All-Gather),
// TreeAR next (flat tree over the slow NICs), 2DTAR better (hierarchical
// dense), HiTopKComm best.
//
// A third panel measures the *functional* data path (real buffers moved on
// this host, not simulated clocks): each converted collective runs under
// the schedule engine and under the legacy inline loops, and the wall-time
// ratio is the engine's win.
//
// Two topology-axis panels exercise the generalized simnet::Topology:
//   (c) a 4:1-oversubscribed fat tree (16 nodes x 8 GPUs in 4-node pods,
//       Tencent-like links) comparing the flat world ring against
//       BlueConnect's nested-ring decomposition — auto {8,16} and the
//       rack-aware {8,4,4} — plus 2DTAR for context.  The recorded
//       "speedup" (flat ring / BlueConnect) is what the perf gate pins:
//       BlueConnect must keep beating the flat ring here.
//   (d) an uneven cluster ({8,8,4,4} GPUs per node) running the
//       world-shaped collectives that support heterogeneous nodes:
//       HierAR, NaiveAG, and folded gTop-k.
//
// Everything is emitted to BENCH_fig07.json (schema in
// docs/REPRODUCING.md) for the CI perf gate.
//
// Flags: --functional_elems=N (default 1M)  --reps=N (default 3)
//        --json=PATH (default BENCH_fig07.json; empty disables)
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "collectives/blueconnect.h"
#include "collectives/gtopk.h"
#include "collectives/hier_allreduce.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/planner.h"
#include "collectives/ring.h"
#include "collectives/schedule.h"
#include "collectives/torus2d.h"
#include "collectives/tree_allreduce.h"
#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/tensor.h"

namespace {

using namespace hitopk;
using namespace hitopk::coll;
using hitopk::simnet::Cluster;
using hitopk::simnet::LinkParams;
using hitopk::simnet::Topology;

struct SimRow {
  size_t elems;
  double naive, tree, torus, hitopk;
};

std::vector<SimRow> run_sim_panel(const Topology& topo,
                                  std::span<const size_t> sizes) {
  const size_t fp16 = 2;
  const double density = 0.01;
  std::vector<SimRow> rows;
  for (size_t elems : sizes) {
    SimRow row;
    row.elems = elems;
    Cluster c_naive(topo);
    row.naive =
        naive_sparse_allgather_time(
            c_naive,
            static_cast<size_t>(density * static_cast<double>(elems)), fp16,
            0.0, 0.0)
            .total;
    Cluster c_tree(topo);
    TreeOptions tree_options;
    tree_options.wire = WireDtype::kFp16;
    row.tree = tree_allreduce(c_tree, world_group(topo), {}, elems,
                              tree_options, 0.0);
    Cluster c_torus(topo);
    row.torus = torus2d_allreduce(c_torus, {}, elems, WireDtype::kFp16, 0.0).total;
    Cluster c_hitopk(topo);
    HiTopKOptions options;
    options.density = density;
    options.value_wire = WireDtype::kFp16;
    row.hitopk = hitopk_comm(c_hitopk, {}, elems, options, 0.0).total;
    rows.push_back(row);
  }
  return rows;
}

// ---- topology-axis panels -----------------------------------------------

// Tencent-like link parameters, reused for the new scenario topologies.
Topology cloud_fabric(int nodes, int gpus, double oversubscription,
                      int nodes_per_pod) {
  const double nic_beta = 1.0 / (25.0 / 8 * 1e9 * 0.55);  // 25 GbE @ 55%
  return Topology(nodes, gpus, LinkParams{6e-6, 1.0 / 45e9},
                  LinkParams{25e-6, 1.0 / 1.2e9}, nic_beta, oversubscription,
                  nodes_per_pod);
}

struct FatTreeRow {
  size_t elems;
  double flat_ring, blueconnect, blueconnect_rack, torus;
  double speedup() const { return flat_ring / blueconnect; }
};

// 16 nodes x 8 GPUs in 4-node pods, 4:1 oversubscribed uplinks.  The flat
// world-scale ring is stuck at one per-flow TCP stream per node; the
// BlueConnect decompositions open 8 concurrent flows per NIC and keep the
// bulk of the bytes on NVLink.
std::vector<FatTreeRow> run_fat_tree_panel(std::span<const size_t> sizes) {
  const Topology topo = cloud_fabric(16, 8, /*oversubscription=*/4.0,
                                     /*nodes_per_pod=*/4);
  std::vector<FatTreeRow> rows;
  for (size_t elems : sizes) {
    FatTreeRow row;
    row.elems = elems;
    Cluster c_ring(topo);
    row.flat_ring =
        ring_allreduce(c_ring, world_group(topo), {}, elems, WireDtype::kFp16, 0.0);
    Cluster c_bc(topo);
    BlueConnectOptions bc;  // auto {gpus_per_node, nodes}
    bc.wire = WireDtype::kFp16;
    row.blueconnect = blueconnect_allreduce(c_bc, {}, elems, bc, 0.0).total;
    Cluster c_rack(topo);
    BlueConnectOptions rack;
    rack.factors = {8, 4, 4};  // {gpus, nodes-per-pod, pods}
    rack.wire = WireDtype::kFp16;
    row.blueconnect_rack =
        blueconnect_allreduce(c_rack, {}, elems, rack, 0.0).total;
    Cluster c_torus(topo);
    row.torus = torus2d_allreduce(c_torus, {}, elems, WireDtype::kFp16, 0.0).total;
    rows.push_back(row);
  }
  return rows;
}

struct UnevenRow {
  size_t elems;
  double hier, naive, gtopk;
};

// Heterogeneous fleet: two 8-GPU and two 4-GPU nodes (the transient-server
// scenario).  Only node-shape-agnostic collectives run here; gTop-k's
// world size (24) exercises the non-power-of-two fold.
std::vector<UnevenRow> run_uneven_panel(std::span<const size_t> sizes) {
  const double nic_beta = 1.0 / (25.0 / 8 * 1e9 * 0.55);
  const Topology topo(std::vector<int>{8, 8, 4, 4},
                      LinkParams{6e-6, 1.0 / 45e9},
                      LinkParams{25e-6, 1.0 / 1.2e9}, nic_beta);
  const double density = 0.01;
  std::vector<UnevenRow> rows;
  for (size_t elems : sizes) {
    UnevenRow row;
    row.elems = elems;
    Cluster c_hier(topo);
    row.hier = hier_allreduce(c_hier, {}, elems, WireDtype::kFp16, 0.0).total;
    Cluster c_naive(topo);
    row.naive = naive_sparse_allgather_time(
                    c_naive,
                    static_cast<size_t>(density * static_cast<double>(elems)),
                    2, 0.0, 0.0)
                    .total;
    Cluster c_gtopk(topo);
    GtopkOptions gtopk;
    gtopk.density = density;
    gtopk.value_wire_bytes = 2;
    row.gtopk = gtopk_comm(c_gtopk, {}, elems, gtopk, 0.0).total;
    rows.push_back(row);
  }
  return rows;
}

// ---- planner panel ------------------------------------------------------

struct PlannerRow {
  std::string topology;
  size_t elems;
  double flat_ring, planned;
  std::string chosen;
  double speedup;
};

// Panel (e): the cost-model-driven planner (collectives/planner.h) against
// the fixed flat ring, across the gated topologies and the
// latency->bandwidth size range.  32K elements is the latency-bound
// small-message row (recursive halving-doubling territory); 64M is the
// bandwidth-bound regime where the hierarchy-aligned decompositions win.
// The planner never loses to the flat ring by construction; the refs pin
// *which* schedule it picks and by how much.
std::vector<PlannerRow> run_planner_panel() {
  struct Scenario {
    const char* name;
    Topology topo;
  };
  const double nic_beta = 1.0 / (25.0 / 8 * 1e9 * 0.55);
  const std::vector<Scenario> scenarios = {
      {"tencent_16x8", Topology::tencent_cloud(16, 8)},
      {"fat_tree_4to1", cloud_fabric(16, 8, 4.0, 4)},
      {"fat_tree_8to1", cloud_fabric(16, 8, 8.0, 4)},
      {"uneven_8_8_4_4",
       Topology(std::vector<int>{8, 8, 4, 4}, LinkParams{6e-6, 1.0 / 45e9},
                LinkParams{25e-6, 1.0 / 1.2e9}, nic_beta)},
  };
  const size_t sizes[] = {32u << 10, 1u << 20, 16u << 20, 64u << 20};
  PlannerOptions options;
  options.wire = WireDtype::kFp16;
  std::vector<PlannerRow> rows;
  for (const Scenario& s : scenarios) {
    Planner planner(options);
    for (size_t elems : sizes) {
      const PlanChoice choice = planner.plan(s.topo, elems);
      rows.push_back({s.name, elems, choice.flat_ring_seconds,
                      choice.predicted_seconds, choice.name,
                      choice.speedup()});
    }
  }
  return rows;
}

// ---- functional wall-time panel -----------------------------------------

struct FunctionalRow {
  std::string name;
  double schedule_s = 0.0;
  double legacy_s = 0.0;
  double speedup() const { return legacy_s > 0 ? legacy_s / schedule_s : 0; }
};

// Measures `fn(data)` wall time under both collective paths: buffers are
// re-seeded before every repetition (outside the timed region) so each run
// aggregates the same gradients from the same starting state.  The two
// paths alternate rep by rep and the minimum is reported — on a shared
// 1-vCPU host, sequential blocks drift with neighbor load, and min-of-reps
// is the standard noise-robust wall estimator.
template <typename Fn>
FunctionalRow measure_functional(const std::string& name, const Topology& topo,
                                 size_t elems, int reps, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  std::vector<Tensor> originals;
  Rng rng(2024);
  for (int r = 0; r < topo.world_size(); ++r) {
    Tensor t(elems);
    t.fill_normal(rng, 0.0f, 1.0f);
    originals.push_back(std::move(t));
  }
  std::vector<Tensor> scratch = originals;
  FunctionalRow row;
  row.name = name;
  double best_schedule = 0.0, best_legacy = 0.0;
  for (int rep = 0; rep < 2 * (reps + 1); ++rep) {
    const CollectivePath path =
        rep % 2 == 0 ? CollectivePath::kSchedule : CollectivePath::kLegacy;
    set_collective_path(path);
    for (size_t r = 0; r < originals.size(); ++r) {
      std::copy(originals[r].span().begin(), originals[r].span().end(),
                scratch[r].span().begin());
    }
    RankData spans;
    for (auto& t : scratch) spans.push_back(t.span());
    Cluster cluster(topo);
    const auto begin = clock::now();
    fn(cluster, spans);
    const double seconds =
        std::chrono::duration<double>(clock::now() - begin).count();
    if (rep < 2) continue;  // one warm-up per path
    double& best = path == CollectivePath::kSchedule ? best_schedule
                                                     : best_legacy;
    best = best == 0.0 ? seconds : std::min(best, seconds);
  }
  row.schedule_s = best_schedule;
  row.legacy_s = best_legacy;
  set_collective_path(CollectivePath::kSchedule);
  return row;
}

std::vector<FunctionalRow> run_functional_panel(size_t elems, int reps) {
  // Same fast-intra / slow-inter imbalance as the cloud topology, scaled to
  // a 4x4 cluster so 16 full-size rank buffers fit comfortably in memory.
  const Topology topo(4, 4, LinkParams{1e-6, 1e-9}, LinkParams{1e-5, 1e-8});
  std::vector<FunctionalRow> rows;
  rows.push_back(measure_functional(
      "TreeAR", topo, elems, reps, [&](Cluster& c, const RankData& data) {
        tree_allreduce(c, world_group(c.topology()), data, elems,
                       TreeOptions{}, 0.0);
      }));
  rows.push_back(measure_functional(
      "2DTAR", topo, elems, reps, [&](Cluster& c, const RankData& data) {
        torus2d_allreduce(c, data, elems, WireDtype::kFp32, 0.0);
      }));
  rows.push_back(measure_functional(
      "HierAR", topo, elems, reps, [&](Cluster& c, const RankData& data) {
        hier_allreduce(c, data, elems, WireDtype::kFp32, 0.0);
      }));
  rows.push_back(measure_functional(
      "HiTopKComm", topo, elems, reps, [&](Cluster& c, const RankData& data) {
        HiTopKOptions options;
        options.density = 0.01;
        hitopk_comm(c, data, elems, options, 0.0);
      }));
  // Quantized column: the same hierarchical aggregation with the sparse
  // values crossing an fp16 wire (dense step-1 leg included).  The perf
  // gate pins this speedup alongside the fp32 row.
  rows.push_back(measure_functional(
      "HiTopKComm_fp16", topo, elems, reps,
      [&](Cluster& c, const RankData& data) {
        HiTopKOptions options;
        options.density = 0.01;
        options.value_wire = WireDtype::kFp16;
        hitopk_comm(c, data, elems, options, 0.0);
      }));
  return rows;
}

void write_json(const std::string& path, const std::vector<SimRow>& small,
                const std::vector<SimRow>& large,
                const std::vector<FatTreeRow>& fat_tree,
                const std::vector<UnevenRow>& uneven,
                const std::vector<PlannerRow>& planner,
                const std::vector<FunctionalRow>& functional, size_t elems,
                int reps) {
  std::FILE* json = std::fopen(path.c_str(), "w");
  if (json == nullptr) return;
  auto panel = [&](const char* name, const std::vector<SimRow>& rows,
                   const char* tail) {
    std::fprintf(json, "    \"%s\": [\n", name);
    for (size_t i = 0; i < rows.size(); ++i) {
      const SimRow& r = rows[i];
      std::fprintf(json,
                   "      {\"elems_m\": %zu, \"naive\": %.9g, \"tree\": "
                   "%.9g, \"torus\": %.9g, \"hitopk\": %.9g}%s\n",
                   r.elems >> 20, r.naive, r.tree, r.torus, r.hitopk,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "    ]%s\n", tail);
  };
  std::fprintf(json, "{\n  \"bench\": \"fig07_aggregation\",\n  \"sim\": {\n");
  panel("small", small, ",");
  panel("large", large, ",");
  std::fprintf(json, "    \"fat_tree\": [\n");
  for (size_t i = 0; i < fat_tree.size(); ++i) {
    const FatTreeRow& r = fat_tree[i];
    std::fprintf(json,
                 "      {\"elems_m\": %zu, \"flat_ring\": %.9g, "
                 "\"blueconnect\": %.9g, \"blueconnect_rack\": %.9g, "
                 "\"torus\": %.9g, \"speedup\": %.3f}%s\n",
                 r.elems >> 20, r.flat_ring, r.blueconnect,
                 r.blueconnect_rack, r.torus, r.speedup(),
                 i + 1 < fat_tree.size() ? "," : "");
  }
  std::fprintf(json, "    ],\n    \"uneven\": [\n");
  for (size_t i = 0; i < uneven.size(); ++i) {
    const UnevenRow& r = uneven[i];
    std::fprintf(json,
                 "      {\"elems_m\": %zu, \"hier\": %.9g, \"naive\": %.9g, "
                 "\"gtopk\": %.9g}%s\n",
                 r.elems >> 20, r.hier, r.naive, r.gtopk,
                 i + 1 < uneven.size() ? "," : "");
  }
  std::fprintf(json, "    ],\n    \"planner\": [\n");
  for (size_t i = 0; i < planner.size(); ++i) {
    const PlannerRow& r = planner[i];
    std::fprintf(json,
                 "      {\"topology\": \"%s\", \"elems\": %zu, "
                 "\"flat_ring\": %.9g, \"planned\": %.9g, \"chosen\": "
                 "\"%s\", \"speedup\": %.3f}%s\n",
                 r.topology.c_str(), r.elems, r.flat_ring, r.planned,
                 r.chosen.c_str(), r.speedup,
                 i + 1 < planner.size() ? "," : "");
  }
  std::fprintf(json, "    ]\n");
  std::fprintf(json,
               "  },\n  \"functional\": {\n    \"topology\": \"4x4\",\n"
               "    \"elems\": %zu,\n    \"reps\": %d,\n"
               "    \"collectives\": {\n",
               elems, reps);
  for (size_t i = 0; i < functional.size(); ++i) {
    const FunctionalRow& r = functional[i];
    std::fprintf(json,
                 "      \"%s\": {\"schedule_s\": %.6f, \"legacy_s\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.schedule_s, r.legacy_s, r.speedup(),
                 i + 1 < functional.size() ? "," : "");
  }
  std::fprintf(json, "    }\n  }\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const size_t functional_elems = static_cast<size_t>(
      flags.get_int("functional_elems", 1 << 20));
  const int reps = flags.get_int("reps", 3);
  const std::string json_path = flags.get("json", "BENCH_fig07.json");

  std::cout << "=== Fig. 7: aggregation time (16 nodes x 8 GPUs, FP16, "
               "rho=0.01) ===\n\n";
  const Topology topo = Topology::tencent_cloud(16, 8);

  const size_t small[] = {1u << 20, 2u << 20, 5u << 20, 10u << 20, 15u << 20};
  const size_t large[] = {50u << 20, 100u << 20, 150u << 20, 200u << 20,
                          250u << 20};
  const auto small_rows = run_sim_panel(topo, small);
  const auto large_rows = run_sim_panel(topo, large);

  TablePrinter table({"Panel", "Elements", "NaiveAG", "TreeAR", "2DTAR",
                      "HiTopKComm", "best/worst"});
  auto add_rows = [&](const char* panel, const std::vector<SimRow>& rows) {
    for (const SimRow& r : rows) {
      table.add_row({panel, std::to_string(r.elems >> 20) + "M",
                     TablePrinter::fmt(r.naive, 4), TablePrinter::fmt(r.tree, 4),
                     TablePrinter::fmt(r.torus, 4),
                     TablePrinter::fmt(r.hitopk, 4),
                     TablePrinter::fmt(r.naive / r.hitopk, 1) + "x"});
    }
  };
  add_rows("(a) small", small_rows);
  add_rows("(b) large", large_rows);
  table.print(std::cout);
  std::cout << "\nExpected ordering: HiTopKComm < 2DTAR < TreeAR < NaiveAG "
               "(TreeAR converges\ntoward NaiveAG at the largest sizes, "
               "where both are NIC-bandwidth-bound).\n\n";

  std::cout << "=== Topology axis (c): 4:1-oversubscribed fat tree "
               "(16x8, 4-node pods, FP16) ===\n\n";
  const size_t topo_sizes[] = {1u << 20, 4u << 20, 16u << 20, 64u << 20};
  const auto fat_rows = run_fat_tree_panel(topo_sizes);
  TablePrinter fat_table({"Elements", "FlatRing", "BlueConnect{8,16}",
                          "BlueConnect{8,4,4}", "2DTAR", "flat/BC"});
  for (const FatTreeRow& r : fat_rows) {
    fat_table.add_row({std::to_string(r.elems >> 20) + "M",
                       TablePrinter::fmt(r.flat_ring, 4),
                       TablePrinter::fmt(r.blueconnect, 4),
                       TablePrinter::fmt(r.blueconnect_rack, 4),
                       TablePrinter::fmt(r.torus, 4),
                       TablePrinter::fmt(r.speedup(), 2) + "x"});
  }
  fat_table.print(std::cout);
  std::cout << "\nThe flat ring is stuck at one TCP stream per node; "
               "BlueConnect's nested rings\naggregate toward NIC line rate "
               "and keep the bulk on NVLink.  The perf gate pins\nthe "
               "flat/BC speedup.\n\n";

  std::cout << "=== Topology axis (d): uneven cluster {8,8,4,4} GPUs/node "
               "(FP16, rho=0.01) ===\n\n";
  const auto uneven_rows = run_uneven_panel(topo_sizes);
  TablePrinter uneven_table({"Elements", "HierAR", "NaiveAG", "gTop-k(P=24)"});
  for (const UnevenRow& r : uneven_rows) {
    uneven_table.add_row({std::to_string(r.elems >> 20) + "M",
                          TablePrinter::fmt(r.hier, 4),
                          TablePrinter::fmt(r.naive, 4),
                          TablePrinter::fmt(r.gtopk, 4)});
  }
  uneven_table.print(std::cout);
  std::cout << "\ngTop-k folds the 24-rank world into a 16-rank hypercube "
               "(fold + 4 + unfold rounds).\n\n";

  std::cout << "=== Planner (e): cost-model-driven schedule choice vs the "
               "fixed flat ring (FP16) ===\n\n";
  const auto planner_rows = run_planner_panel();
  TablePrinter planner_table(
      {"Topology", "Elements", "FlatRing", "Planned", "Chosen", "speedup"});
  for (const PlannerRow& r : planner_rows) {
    planner_table.add_row(
        {r.topology,
         r.elems >= (1u << 20) ? std::to_string(r.elems >> 20) + "M"
                               : std::to_string(r.elems >> 10) + "K",
         TablePrinter::fmt(r.flat_ring, 4), TablePrinter::fmt(r.planned, 4),
         r.chosen, TablePrinter::fmt(r.speedup, 2) + "x"});
  }
  planner_table.print(std::cout);
  std::cout << "\nThe planner scores every candidate schedule on the "
               "simulated clock and never\nloses to the flat ring; the refs "
               "pin which schedule wins each regime.\n\n";

  std::cout << "=== Functional data path (4x4 cluster, "
            << (functional_elems >> 20) << "M elements, wall time) ===\n\n";
  const auto functional = run_functional_panel(functional_elems, reps);
  TablePrinter ftable(
      {"Collective", "schedule (s)", "legacy (s)", "speedup"});
  for (const FunctionalRow& r : functional) {
    ftable.add_row({r.name, TablePrinter::fmt(r.schedule_s, 4),
                    TablePrinter::fmt(r.legacy_s, 4),
                    TablePrinter::fmt(r.speedup(), 2) + "x"});
  }
  ftable.print(std::cout);
  std::cout << "\nschedule = unified collective-schedule engine (resolved "
               "all-gathers, batched\nper-step reduces); legacy = the "
               "pre-engine inline loops (validation reference).\n";

  if (!json_path.empty()) {
    write_json(json_path, small_rows, large_rows, fat_rows, uneven_rows,
               planner_rows, functional, functional_elems, reps);
  }
  return 0;
}
