// Ablation: three ways to aggregate sparse gradients — NaiveAG (flat
// All-Gather, the paper's TopK-SGD baseline), gTop-k (recursive-doubling
// global top-k, Shi et al. 2019c), and HiTopKComm (the paper's hierarchy) —
// compared on aggregation time and on real convergence at equal density.
#include <iostream>

#include "collectives/gtopk.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "core/table.h"
#include "train/convergence.h"
#include "train/synthetic.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk;

  std::cout << "=== Ablation: sparse aggregation schemes (16x8 cluster, "
               "FP16, rho=0.01) ===\n\n";
  const simnet::Topology topo = simnet::Topology::tencent_cloud(16, 8);

  TablePrinter comm_table({"Elements", "NaiveAG", "gTopK", "HiTopKComm"});
  for (const size_t elems : {1u << 20, 8u << 20, 25u << 20, 100u << 20}) {
    const size_t k = static_cast<size_t>(0.01 * static_cast<double>(elems));
    simnet::Cluster c_naive(topo);
    const double naive =
        coll::naive_sparse_allgather_time(c_naive, k, 2, 0.0, 0.0).total;
    simnet::Cluster c_gtopk(topo);
    coll::GtopkOptions gtopk_options;
    gtopk_options.density = 0.01;
    gtopk_options.value_wire_bytes = 2;
    const double gtopk =
        coll::gtopk_comm(c_gtopk, {}, elems, gtopk_options, 0.0).total;
    simnet::Cluster c_hitopk(topo);
    coll::HiTopKOptions hitopk_options;
    hitopk_options.density = 0.01;
    hitopk_options.value_wire = coll::WireDtype::kFp16;
    const double hitopk =
        coll::hitopk_comm(c_hitopk, {}, elems, hitopk_options, 0.0).total;
    comm_table.add_row({std::to_string(elems >> 20) + "M",
                        TablePrinter::fmt(naive, 4),
                        TablePrinter::fmt(gtopk, 4),
                        TablePrinter::fmt(hitopk, 4)});
  }
  comm_table.print(std::cout);

  std::cout << "\n--- convergence at rho=0.01 (vision proxy, 16 workers, 15 "
               "epochs) ---\n";
  TablePrinter quality_table({"Scheme", "Final top-5", "Comm (sim s)",
                              "Delivered coordinates"});
  for (const auto algorithm :
       {train::ConvergenceAlgorithm::kTopk, train::ConvergenceAlgorithm::kGtopk,
        train::ConvergenceAlgorithm::kMstopk}) {
    auto task = train::make_vision_task(4242);
    train::ConvergenceOptions options;
    options.algorithm = algorithm;
    options.epochs = 15;
    options.density = 0.01;
    const auto result = train::run_convergence(*task, options);
    const char* delivered =
        algorithm == train::ConvergenceAlgorithm::kTopk
            ? "union of P local top-k"
            : (algorithm == train::ConvergenceAlgorithm::kGtopk
                   ? "one global top-k"
                   : "m node top-k per shard");
    quality_table.add_row(
        {train::convergence_algorithm_name(algorithm),
         TablePrinter::fmt_percent(result.final_quality),
         TablePrinter::fmt(result.simulated_comm_seconds, 3), delivered});
  }
  quality_table.print(std::cout);
  std::cout << "\nExpected: gTopK moves the least data but delivers the "
               "fewest coordinates;\nHiTopKComm is fastest at equal density "
               "thanks to the NVLink hierarchy.\n";
  return 0;
}
