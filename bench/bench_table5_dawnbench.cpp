// Table 5: DAWNBench — time to 93% top-5 accuracy on ImageNet with 128
// Tesla V100 GPUs.  Historical leaderboard rows are reproduced verbatim;
// our row is the simulated 28-epoch recipe on the 25 GbE Tencent cluster.
//
//   Paper: FastAI 1086 s (100GbIB) / Huawei 562 s / Huawei 163 s (100GbIB)
//          / Alibaba 158 s (32GbE) / Ours 151 s (25GbE).
#include <iostream>

#include "core/table.h"
#include "train/dawnbench.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Table 5: time to 93% top-5 accuracy, 128 V100 GPUs ===\n\n";
  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);
  const auto report =
      simulate_dawnbench(topo, DawnbenchSchedule::paper_recipe());

  TablePrinter table({"Team", "Date", "Interconnect", "Time (seconds)"});
  table.add_row({"FastAI", "Sep 2018", "100GbIB", "1086"});
  table.add_row({"Huawei", "Dec 2018", "-", "562"});
  table.add_row({"Huawei", "May 2019", "100GbIB", "163"});
  table.add_row({"Alibaba", "Mar 2020", "32GbE", "158"});
  table.add_row({"Paper (measured)", "Aug 2020", "25GbE", "151"});
  table.add_row({"This repo (simulated)", "-", "25GbE",
                 TablePrinter::fmt(report.total_seconds, 1)});
  table.print(std::cout);

  std::cout << "\nBreakdown: train "
            << TablePrinter::fmt(report.train_seconds, 1) << " s + eval "
            << TablePrinter::fmt(report.eval_seconds, 1) << " s; phases:";
  for (const auto& p : report.phases) {
    std::cout << "  " << p.phase.resolution << "^2:"
              << TablePrinter::fmt(p.seconds, 1) << "s";
  }
  std::cout << "\n\nKey claim reproduced: the recipe on 25GbE beats "
               "Alibaba's 158 s on 32GbE\nbecause MSTopK-SGD rescues the "
               "low-resolution phase where dense scaling collapses.\n";

  // What-if: the same recipe on the competitors' interconnects.
  std::cout << "\nWhat-if (same recipe, other interconnects):\n";
  for (const auto& [name, what_if_topo] :
       {std::pair{"32GbE (Aliyun)", hitopk::simnet::Topology::aliyun(16, 8)},
        std::pair{"100GbIB", hitopk::simnet::Topology::infiniband_100g(16, 8)}}) {
    const auto what_if =
        simulate_dawnbench(what_if_topo, DawnbenchSchedule::paper_recipe());
    std::cout << "  " << name << ": "
              << TablePrinter::fmt(what_if.total_seconds, 1) << " s\n";
  }
  return 0;
}
