// Micro benchmark + CI smoke for the tiled SGEMM core (core/gemm.h).
//
// Runs the register-tiled sgemm() against the naive-loop reference at the
// representative shapes of the autodiff engine — the MLP/sequence layer
// products (batch x hidden) at the convergence-bench batch sizes, their
// backward transposed variants, and the im2col-lowered CNN convolutions —
// and *fails* (non-zero exit) if the tiled kernel is slower than the naive
// loop anywhere.  CI runs this as a regression gate, so a refactor that
// breaks the microkernel's vectorization (e.g. by giving its inner loops
// runtime trip counts; see core/gemm.cpp) shows up as a red build instead
// of a silent several-fold convergence slowdown.
#include <chrono>
#include <functional>
#include <iostream>
#include <cstdio>
#include <vector>

#include "core/gemm.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/tensor.h"

namespace {

using hitopk::gemm::Trans;

struct Shape {
  const char* label;
  Trans trans_a;
  Trans trans_b;
  size_t m, n, k;
};

double best_seconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best;
}

}  // namespace

int main() {
  using hitopk::Rng;
  using hitopk::TablePrinter;
  using hitopk::Tensor;

  // batch x in x out products of the three synthetic convergence tasks
  // (MLP vision proxies, embedding sequence model, im2col'd CNN) plus the
  // backward products dA = dC*B^T (NT) and dB = A^T*dC (TN).
  const Shape shapes[] = {
      {"mlp fwd h1 (b32)", Trans::kNo, Trans::kNo, 32, 96, 64},
      {"mlp fwd h2 (b32)", Trans::kNo, Trans::kNo, 32, 64, 96},
      {"mlp fwd logits", Trans::kNo, Trans::kNo, 32, 50, 64},
      {"mlp fwd (b8, fig10)", Trans::kNo, Trans::kNo, 8, 96, 64},
      {"mlp bwd dA", Trans::kNo, Trans::kYes, 32, 64, 96},
      {"mlp bwd dB", Trans::kYes, Trans::kNo, 64, 96, 32},
      {"seq fwd hidden", Trans::kNo, Trans::kNo, 32, 64, 32},
      {"cnn conv1 im2col", Trans::kNo, Trans::kNo, 16, 144, 9},
      {"cnn conv2 im2col", Trans::kNo, Trans::kNo, 16, 144, 144},
      {"cnn bwd dW", Trans::kNo, Trans::kYes, 16, 144, 144},
      {"cnn bwd dcol", Trans::kYes, Trans::kNo, 144, 144, 16},
      {"eval fwd (b512)", Trans::kNo, Trans::kNo, 512, 96, 64},
  };

  std::printf("=== bench_micro_gemm: tiled sgemm vs naive loops ===\n\n");
  TablePrinter table({"shape", "m", "n", "k", "naive us", "tiled us",
                      "speedup"});
  Rng rng(7);
  bool ok = true;
  double worst = 1e100;
  for (const Shape& s : shapes) {
    const size_t a_elems = s.m * s.k;
    const size_t b_elems = s.k * s.n;
    Tensor a(a_elems), b(b_elems), c(s.m * s.n);
    a.fill_normal(rng, 0.0f, 1.0f);
    b.fill_normal(rng, 0.0f, 1.0f);
    const size_t lda = s.trans_a == Trans::kNo ? s.k : s.m;
    const size_t ldb = s.trans_b == Trans::kNo ? s.n : s.k;
    // Enough inner iterations that one rep is comfortably above timer
    // resolution on a 1-vCPU runner.
    const int inner = static_cast<int>(
        std::max<size_t>(4, (1u << 22) / (s.m * s.n * s.k)));
    const double naive = best_seconds(
        [&] {
          for (int i = 0; i < inner; ++i) {
            hitopk::gemm::sgemm_naive(s.trans_a, s.trans_b, s.m, s.n, s.k,
                                      a.data(), lda, b.data(), ldb, c.data(),
                                      s.n, false);
          }
        },
        7) / inner;
    const double tiled = best_seconds(
        [&] {
          for (int i = 0; i < inner; ++i) {
            hitopk::gemm::sgemm(s.trans_a, s.trans_b, s.m, s.n, s.k, a.data(),
                                lda, b.data(), ldb, c.data(), s.n, false);
          }
        },
        7) / inner;
    const double speedup = naive / tiled;
    worst = std::min(worst, speedup);
    if (tiled > naive) ok = false;
    table.add_row({s.label, std::to_string(s.m), std::to_string(s.n),
                   std::to_string(s.k),
                   TablePrinter::fmt(naive * 1e6, 2),
                   TablePrinter::fmt(tiled * 1e6, 2),
                   TablePrinter::fmt(speedup, 2) + "x"});
  }
  table.print(std::cout);
  std::printf("\nworst speedup: %.2fx — %s\n", worst,
              ok ? "OK (tiled never slower than naive)"
                 : "FAIL (tiled slower than the naive loop)");
  return ok ? 0 : 1;
}
