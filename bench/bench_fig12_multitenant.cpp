// Fig. 12 (multi-tenant axis): placement policy under a shared-cluster
// trace replay.
//
// The paper's cluster is a *shared* public cloud: many tenants' training
// jobs arrive over time and contend for the NIC/uplink fabric.  This
// harness replays a Poisson-arrival trace of mixed-gang-size jobs (each job
// = PerfModel compute + ring All-Reduce of its gradient payload, see
// train/tenant.h) on a 16x8 Tencent-Cloud-style fabric with a 2:1
// oversubscribed pod layer, once per gang placement policy, and reports:
//
//   per-job slowdown — JCT on the shared cluster / the same job's runtime
//     alone on an idle cluster (queueing + port contention combined);
//   goodput — sum of isolated runtimes / makespan ("useful cluster seconds
//     delivered per wall second");
//   tail JCT — p50/p95/p99 job completion time.
//
// The expected shape: locality-aware placement dominates spread on tail
// latency (it keeps small gangs inside one NVLink/pod domain, so their
// rings dodge the oversubscribed uplinks), pack-by-pod sits between (dense
// packing loads fewer uplinks but stacks tenants on them), and spread buys
// mean NIC bandwidth at the price of making every job inter-node.
//
// Every number is a deterministic function of the arrival seed (seeded
// Poisson trace + port-clock simulator — no wall clocks), so the whole
// output sits under the JSON "sim" subtree and the CI perf gate pins it to
// 1e-6 relative (bench/refs/BENCH_fig12.json; schema in docs/REPRODUCING.md).
//
// Flags: --jobs=N (default 120, the >=100-job replay the CI gate pins)
//        --seed=N (default HITOPK_FIG12_SEED env or 20260807)
//        --mean_arrival_ms=F (default 50)  --grad_mb=N (default 100)
//        --json=PATH (default BENCH_fig12.json; empty disables)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/flags.h"
#include "core/table.h"
#include "simnet/job_scheduler.h"
#include "train/tenant.h"

namespace {

using namespace hitopk;

uint64_t default_seed() {
  if (const char* env = std::getenv("HITOPK_FIG12_SEED")) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 20260807ull;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int jobs = flags.get_int("jobs", 120);
  const uint64_t seed = static_cast<uint64_t>(
      flags.get_int("seed", static_cast<int>(default_seed())));
  const double mean_arrival_ms = flags.get_double("mean_arrival_ms", 50.0);
  const int grad_mb = flags.get_int("grad_mb", 100);
  const std::string json_path = flags.get("json", "BENCH_fig12.json");

  // 16x8 Tencent-Cloud link parameters with a 2:1 oversubscribed fat tree
  // of 4-node pods — placement has to matter for the uplink layer to show.
  const auto base = simnet::Topology::tencent_cloud(16, 8);
  const simnet::Topology topo(16, 8, base.intra(), base.inter(),
                              base.nic_beta(), /*oversubscription=*/2.0,
                              /*nodes_per_pod=*/4);

  simnet::TraceOptions trace_options;
  trace_options.jobs = jobs;
  trace_options.mean_interarrival_seconds = mean_arrival_ms / 1e3;
  trace_options.seed = seed;
  trace_options.bytes_per_gpu = static_cast<size_t>(grad_mb) << 20;
  const std::vector<simnet::JobSpec> trace =
      simnet::generate_trace(trace_options);

  train::TenantWorkload workload;  // ResNet-50 @224, local batch 64
  const simnet::JobBody body = train::make_tenant_body(workload);

  std::cout << "=== Fig. 12: multi-tenant trace replay x placement policy "
               "===\n    (" << jobs << " Poisson-arriving jobs, gangs {4, 8, "
               "16, 32}, " << grad_mb << " MB gradients,\n     16x8 Tencent "
               "Cloud + 2:1 oversubscribed 4-node pods, seed " << seed
            << ")\n\n";

  const simnet::PlacementPolicy policies[] = {
      simnet::PlacementPolicy::kPackByPod,
      simnet::PlacementPolicy::kSpread,
      simnet::PlacementPolicy::kLocalityAware,
  };
  std::vector<simnet::ReplayMetrics> results;
  for (const auto policy : policies) {
    results.push_back(simnet::replay_trace(topo, trace, body, policy));
  }

  TablePrinter table({"Policy", "Mean slowdown", "Goodput", "p50 JCT (s)",
                      "p95 JCT (s)", "p99 JCT (s)", "Makespan (s)"});
  for (size_t p = 0; p < results.size(); ++p) {
    const simnet::ReplayMetrics& m = results[p];
    table.add_row({simnet::placement_policy_name(policies[p]),
                   TablePrinter::fmt(m.mean_slowdown, 3),
                   TablePrinter::fmt(m.goodput, 3),
                   TablePrinter::fmt(m.p50_jct, 3),
                   TablePrinter::fmt(m.p95_jct, 3),
                   TablePrinter::fmt(m.p99_jct, 3),
                   TablePrinter::fmt(m.makespan, 3)});
  }
  table.print(std::cout);

  std::cout << "\nExpected: locality-aware keeps small gangs inside one "
               "NVLink/pod domain and wins\nthe tail; pack-by-pod loads few "
               "uplinks but stacks tenants on them; spread makes\nevery job "
               "inter-node and pays for it under load.\n";

  // Quantized axis: the same locality-aware replay with every gang's
  // gradients crossing an fp16 wire — half the bytes per iteration on the
  // oversubscribed fabric.  Informational (ungated): the sim subtree above
  // stays the pinned panel; this one documents the typed-payload headroom.
  train::TenantWorkload fp16_workload;
  fp16_workload.wire = coll::WireDtype::kFp16;
  const simnet::ReplayMetrics fp16_replay = simnet::replay_trace(
      topo, trace, train::make_tenant_body(fp16_workload),
      simnet::PlacementPolicy::kLocalityAware);
  const simnet::ReplayMetrics& fp32_replay = results[2];  // locality-aware

  std::cout << "\n=== Quantized gangs (informational): fp16 vs fp32 wire, "
               "locality-aware ===\n\n";
  TablePrinter qtable({"Wire", "Goodput", "Mean slowdown", "p99 JCT (s)",
                       "Makespan (s)"});
  qtable.add_row({"fp32", TablePrinter::fmt(fp32_replay.goodput, 3),
                  TablePrinter::fmt(fp32_replay.mean_slowdown, 3),
                  TablePrinter::fmt(fp32_replay.p99_jct, 3),
                  TablePrinter::fmt(fp32_replay.makespan, 3)});
  qtable.add_row({"fp16", TablePrinter::fmt(fp16_replay.goodput, 3),
                  TablePrinter::fmt(fp16_replay.mean_slowdown, 3),
                  TablePrinter::fmt(fp16_replay.p99_jct, 3),
                  TablePrinter::fmt(fp16_replay.makespan, 3)});
  qtable.print(std::cout);
  std::cout << "\nHalved transfer bytes shrink each job's communication "
               "phase, so contention on\nthe shared uplinks drops and "
               "goodput rises.\n";

  if (!json_path.empty()) {
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json != nullptr) {
      std::fprintf(json,
                   "{\n  \"bench\": \"fig12_multitenant\",\n  \"sim\": {\n"
                   "    \"cluster\": \"16x8 oversub2 pods4\",\n"
                   "    \"jobs\": %d,\n    \"seed\": %llu,\n"
                   "    \"mean_interarrival_seconds\": %.9g,\n"
                   "    \"gradient_bytes\": %llu,\n    \"policies\": [\n",
                   jobs, static_cast<unsigned long long>(seed),
                   trace_options.mean_interarrival_seconds,
                   static_cast<unsigned long long>(trace_options.bytes_per_gpu));
      for (size_t p = 0; p < results.size(); ++p) {
        const simnet::ReplayMetrics& m = results[p];
        std::fprintf(
            json,
            "      {\"policy\": \"%s\", \"mean_slowdown\": %.9g, "
            "\"goodput\": %.9g, \"p50_jct\": %.9g, \"p95_jct\": %.9g, "
            "\"p99_jct\": %.9g, \"makespan\": %.9g,\n       \"jobs\": [\n",
            simnet::placement_policy_name(policies[p]), m.mean_slowdown,
            m.goodput, m.p50_jct, m.p95_jct, m.p99_jct, m.makespan);
        for (size_t j = 0; j < m.records.size(); ++j) {
          const simnet::JobRecord& r = m.records[j];
          std::fprintf(
              json,
              "        {\"id\": %d, \"gpus\": %d, \"arrival\": %.9g, "
              "\"queued\": %.9g, \"jct\": %.9g, \"isolated\": %.9g, "
              "\"slowdown\": %.9g, \"aborted\": %s}%s\n",
              r.spec.id, r.spec.gpus, r.spec.arrival, r.queued_seconds(),
              r.jct(), r.spec.isolated_seconds, r.slowdown(),
              r.aborted ? "true" : "false",
              j + 1 < m.records.size() ? "," : "");
        }
        std::fprintf(json, "       ]}%s\n",
                     p + 1 < results.size() ? "," : "");
      }
      std::fprintf(json, "    ]\n  },\n");
      // Outside the "sim" subtree on purpose: informational, never gated.
      std::fprintf(
          json,
          "  \"quantized\": {\n    \"policy\": \"locality_aware\",\n"
          "    \"fp32\": {\"goodput\": %.9g, \"mean_slowdown\": %.9g, "
          "\"p99_jct\": %.9g, \"makespan\": %.9g},\n"
          "    \"fp16\": {\"goodput\": %.9g, \"mean_slowdown\": %.9g, "
          "\"p99_jct\": %.9g, \"makespan\": %.9g}\n  }\n}\n",
          fp32_replay.goodput, fp32_replay.mean_slowdown, fp32_replay.p99_jct,
          fp32_replay.makespan, fp16_replay.goodput, fp16_replay.mean_slowdown,
          fp16_replay.p99_jct, fp16_replay.makespan);
      std::fclose(json);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
