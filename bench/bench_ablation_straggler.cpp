// Ablation: compute-time jitter (cloud virtualization stragglers) vs the
// algorithms' throughput.  Synchronous SGD pays E[max of P] per iteration;
// communication-efficient schemes do not help with stragglers, so the gap
// between MSTopK-SGD and Dense-SGD *narrows* as jitter grows.
//
// Two jitter models: the constant-cv Gaussian order statistic (independent
// per-worker noise, the original table) and bursty *correlated-per-pod*
// slowdowns (a whole pod degrades together for a window — noisy neighbor,
// thermal throttling) driven by the seeded FaultPlan degradation script the
// fault scenarios use.
#include <iostream>

#include "core/table.h"
#include "train/scenario.h"
#include "train/timeline.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Ablation: straggler jitter (ResNet-50 @96^2, 16x8 "
               "cluster) ===\n\n";
  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);

  TablePrinter table({"Compute CV", "Dense-SGD", "2DTAR-SGD", "MSTopK-SGD",
                      "MSTopK/Dense"});
  for (const double cv : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    double throughput[3];
    int column = 0;
    for (const Algorithm algorithm :
         {Algorithm::kDenseTree, Algorithm::kDense2dTorus,
          Algorithm::kMstopkHitopk}) {
      TrainerOptions options;
      options.model = "resnet50";
      options.resolution = 96;
      options.algorithm = algorithm;
      options.straggler_cv = cv;
      TrainingSimulator sim(topo, options);
      throughput[column++] = sim.simulate_iteration().throughput;
    }
    table.add_row({TablePrinter::fmt(cv, 2), TablePrinter::fmt(throughput[0], 0),
                   TablePrinter::fmt(throughput[1], 0),
                   TablePrinter::fmt(throughput[2], 0),
                   TablePrinter::fmt(throughput[2] / throughput[0], 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: absolute throughput falls for everyone; the "
               "sparse scheme's relative\nadvantage shrinks because "
               "stragglers, not bandwidth, become the bottleneck.\n";

  // ---- bursty correlated-per-pod jitter (the constant-cv model cannot
  // express this: whole pods slow down together in windows, so the penalty
  // arrives in bursts instead of every iteration).
  std::cout << "\n=== Bursty correlated-per-pod jitter (1.3x for 60 s "
               "windows, 500 iterations) ===\n\n";
  TablePrinter bursty({"Bursts/pod-h", "Dense-SGD", "MSTopK-SGD",
                       "MSTopK/Dense", "MSTopK goodput frac"});
  for (const double rate : {0.0, 6.0, 30.0, 120.0}) {
    double goodput[2];
    double fraction = 1.0;
    int column = 0;
    for (const Algorithm algorithm :
         {Algorithm::kDenseTree, Algorithm::kMstopkHitopk}) {
      ScenarioOptions options;
      options.trainer.model = "resnet50";
      options.trainer.resolution = 96;
      options.trainer.algorithm = algorithm;
      options.iterations = 500;
      // No mid-run checkpoints: this panel isolates jitter, so the only
      // departure from goodput fraction 1.0 is the bursts themselves.
      options.checkpoint_interval = options.iterations;
      options.burst_rate_per_pod_hour = rate;
      options.burst_duration_seconds = 60.0;
      options.burst_factor = 1.3;
      const ScenarioResult result = simulate_scenario(topo, options);
      goodput[column++] = result.goodput;
      fraction = result.goodput_fraction;
    }
    bursty.add_row({TablePrinter::fmt(rate, 0),
                    TablePrinter::fmt(goodput[0], 0),
                    TablePrinter::fmt(goodput[1], 0),
                    TablePrinter::fmt(goodput[1] / goodput[0], 2) + "x",
                    TablePrinter::fmt(fraction, 3)});
  }
  bursty.print(std::cout);
  std::cout << "\nExpected: goodput degrades with burst frequency but only "
               "toward the burst\nfactor's ceiling (bursts hit iterations "
               "inside windows, not all of them), and\nthe MSTopK/Dense "
               "ratio again narrows — correlated compute noise is "
               "algorithm-\nagnostic.\n";
  return 0;
}
