// Ablation: compute-time jitter (cloud virtualization stragglers) vs the
// algorithms' throughput.  Synchronous SGD pays E[max of P] per iteration;
// communication-efficient schemes do not help with stragglers, so the gap
// between MSTopK-SGD and Dense-SGD *narrows* as jitter grows.
#include <iostream>

#include "core/table.h"
#include "train/timeline.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Ablation: straggler jitter (ResNet-50 @96^2, 16x8 "
               "cluster) ===\n\n";
  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);

  TablePrinter table({"Compute CV", "Dense-SGD", "2DTAR-SGD", "MSTopK-SGD",
                      "MSTopK/Dense"});
  for (const double cv : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    double throughput[3];
    int column = 0;
    for (const Algorithm algorithm :
         {Algorithm::kDenseTree, Algorithm::kDense2dTorus,
          Algorithm::kMstopkHitopk}) {
      TrainerOptions options;
      options.model = "resnet50";
      options.resolution = 96;
      options.algorithm = algorithm;
      options.straggler_cv = cv;
      TrainingSimulator sim(topo, options);
      throughput[column++] = sim.simulate_iteration().throughput;
    }
    table.add_row({TablePrinter::fmt(cv, 2), TablePrinter::fmt(throughput[0], 0),
                   TablePrinter::fmt(throughput[1], 0),
                   TablePrinter::fmt(throughput[2], 0),
                   TablePrinter::fmt(throughput[2] / throughput[0], 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected: absolute throughput falls for everyone; the "
               "sparse scheme's relative\nadvantage shrinks because "
               "stragglers, not bandwidth, become the bottleneck.\n";
  return 0;
}
