// Fig. 9: single-GPU iteration time w/o (Naive) and w/ DataCache, training
// ResNet-50 at 96x96 with batch 256.
//
// Paper claims: I/O time drops by more than 10x; end-to-end throughput
// roughly doubles.
#include <iostream>
#include <numeric>

#include "core/table.h"
#include "data/datacache.h"
#include "models/perf_model.h"
#include "core/table.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::data;

  std::cout << "=== Fig. 9: iteration time without / with DataCache "
               "(1 GPU, ResNet-50 @96x96, batch 256) ===\n\n";
  const double others =  // FF&BP + update on one V100
      hitopk::models::PerfModel::ffbp_seconds("resnet50", 96, 256) + 0.004;

  DataCacheConfig config;
  config.dataset = DatasetSpec::imagenet();
  config.nodes = 1;
  std::vector<uint64_t> ids(256);
  std::iota(ids.begin(), ids.end(), uint64_t{0});

  // Naive: every epoch pays the NFS + decode path.
  DataCacheConfig naive_config = config;
  naive_config.use_memory_cache = false;
  naive_config.use_ssd_cache = false;
  DataCache naive(naive_config);
  naive.fetch_batch(ids, 96);
  const double naive_io = naive.fetch_batch(ids, 96).seconds;

  // DataCache: steady state hits the pre-processed memory tier.
  DataCache cached(config);
  cached.fetch_batch(ids, 96);  // first epoch populates the caches
  const double cached_io = cached.fetch_batch(ids, 96).seconds;

  TablePrinter table({"Scheme", "I/O (s)", "Others (s)", "Total (s)",
                      "Throughput (samples/s)"});
  table.add_row({"Naive", TablePrinter::fmt(naive_io, 4),
                 TablePrinter::fmt(others, 4),
                 TablePrinter::fmt(naive_io + others, 4),
                 TablePrinter::fmt(256.0 / (naive_io + others), 0)});
  table.add_row({"DataCache", TablePrinter::fmt(cached_io, 4),
                 TablePrinter::fmt(others, 4),
                 TablePrinter::fmt(cached_io + others, 4),
                 TablePrinter::fmt(256.0 / (cached_io + others), 0)});
  table.print(std::cout);

  std::cout << "\nI/O reduction: " << TablePrinter::fmt(naive_io / cached_io, 1)
            << "x (paper: >10x);  end-to-end speedup: "
            << TablePrinter::fmt((naive_io + others) / (cached_io + others), 2)
            << "x (paper: ~2x)\n";

  // Fig. 5's three paths, for reference.
  DataCache paths(config);
  const double first_run = paths.fetch_batch(ids, 96).seconds;
  const double warm = paths.fetch_batch(ids, 96).seconds;
  paths.new_run();
  const double second_run = paths.fetch_batch(ids, 96).seconds;
  std::cout << "\nFig. 5 fetch paths per 256-batch: first run (NFS+decode) "
            << TablePrinter::fmt(first_run, 4) << " s; second+ epochs (memory) "
            << TablePrinter::fmt(warm, 4) << " s; second+ runs (SSD+decode) "
            << TablePrinter::fmt(second_run, 4) << " s\n";
  return 0;
}
