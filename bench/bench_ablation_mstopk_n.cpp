// Ablation: MSTopK's sampling count N (Alg. 1) — selection quality and
// device-model cost vs N.  The paper fixes N = 30 (Fig. 6); this sweep
// shows why: the threshold brackets tighten geometrically, so ~20-30
// coalesced passes recover nearly all of the exact top-k mass.
#include <cmath>
#include <iostream>

#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/tensor.h"
#include "simgpu/gpu_model.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk;

  std::cout << "=== Ablation: MSTopK sampling count N (d = 4M, k = 0.001d) "
               "===\n\n";
  const size_t d = 4u << 20;
  const size_t k = d / 1000;
  Rng rng(31);
  Tensor x(d);
  x.fill_normal(rng, 0.0f, 1.0f);

  const compress::SparseTensor exact = compress::exact_topk(x.span(), k);
  double exact_mass = 0.0;
  for (float v : exact.values) exact_mass += std::fabs(v);

  const simgpu::GpuCostModel gpu;
  TablePrinter table({"N", "Selected mass vs exact", "Bracket gap (k2-k1)",
                      "Device time (ms)"});
  for (const int n : {1, 2, 5, 10, 15, 20, 30, 50}) {
    compress::MsTopK mstopk(n, 77);
    const compress::SparseTensor approx = mstopk.compress(x.span(), k);
    double mass = 0.0;
    for (float v : approx.values) mass += std::fabs(v);
    const auto& stats = mstopk.last_stats();
    table.add_row({std::to_string(n), TablePrinter::fmt_percent(mass / exact_mass),
                   std::to_string(stats.k2 - stats.k1),
                   TablePrinter::fmt(gpu.mstopk_seconds(d, k, n) * 1e3, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: mass recovery saturates near 100% by N~20-30 "
               "while cost grows linearly in N.\n";
  return 0;
}
