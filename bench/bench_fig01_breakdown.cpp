// Fig. 1: per-iteration time breakdown of the *existing* training schemes
// (stock TensorFlow + Horovod, no DataCache / PTO) on the 128-GPU cluster:
// Dense-SGD and TopK-SGD at input resolutions 224^2 and 96^2.
//
// Paper reference points (224^2): FF&BP 0.204 s; exact top-k compression
// 0.239 s (exceeding FF&BP); I/O and communication occupy a large portion
// of the iteration.
#include <iostream>

#include "core/table.h"
#include "train/timeline.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Fig. 1: iteration breakdown of existing schemes "
               "(baseline system: no DataCache, no PTO) ===\n\n";
  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);

  TablePrinter table({"Scheme", "Resolution", "I/O", "FF&BP", "Compression",
                      "Communication", "LARS", "Overhead", "Total (s)"});
  for (const int resolution : {224, 96}) {
    for (const Algorithm algorithm :
         {Algorithm::kDenseTree, Algorithm::kTopkNaiveAg}) {
      TrainerOptions options;
      options.model = "resnet50";
      options.resolution = resolution;
      options.local_batch = 256;
      options.algorithm = algorithm;
      // The motivation experiment predates the paper's optimizations.
      options.use_datacache = false;
      options.use_pto = false;
      TrainingSimulator sim(topo, options);
      const auto it = sim.simulate_iteration();
      table.add_row({algorithm_name(algorithm),
                     std::to_string(resolution) + "*" + std::to_string(resolution),
                     TablePrinter::fmt(it.io, 3), TablePrinter::fmt(it.ffbp, 3),
                     TablePrinter::fmt(it.compression, 3),
                     TablePrinter::fmt(it.communication, 3),
                     TablePrinter::fmt(it.lars, 3),
                     TablePrinter::fmt(it.overhead, 3),
                     TablePrinter::fmt(it.total, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper anchors (224*224): FF&BP ~0.204 s; TopK-SGD "
               "compression ~0.239 s\n(the exact top-k costs more than the "
               "forward+backward pass itself).\n";
  return 0;
}
