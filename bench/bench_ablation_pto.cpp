// Ablation: PTO (§4.2 / §5.4) — serial vs parallel LARS across world sizes
// and models, plus the functional equality check on real random tensors
// (the paper's microbench: "randomly generated w and g").
//
// Paper anchors at 128 GPUs: ResNet-50 LARS 11 ms -> 7 ms; Transformer
// 30 ms -> 14 ms ("about 2x speedups").
#include <iostream>

#include "core/rng.h"
#include "core/table.h"
#include "models/calibration.h"
#include "models/model_zoo.h"
#include "pto/lars.h"
#include "pto/pto.h"
#include "simgpu/gpu_model.h"
#include "simnet/cluster.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk;

  std::cout << "=== Ablation: PTO for LARS ===\n\n";
  const simgpu::GpuCostModel gpu;

  TablePrinter table({"Model", "GPUs", "Serial (ms)", "PTO (ms)", "Speedup"});
  for (const auto& [label, layers, serial, framework] :
       {std::tuple{"ResNet-50", size_t{161},
                   models::Calibration::lars_resnet50_seconds,
                   models::Calibration::pto_framework_overhead_resnet50},
        std::tuple{"Transformer", models::transformer_wmt().num_tensors(),
                   models::Calibration::lars_transformer_seconds,
                   models::Calibration::pto_framework_overhead_transformer}}) {
    for (const int nodes : {2, 4, 8, 16}) {
      simnet::Cluster cluster(simnet::Topology::tencent_cloud(nodes, 8));
      const auto timing = pto::pto_timing(cluster, layers, 4, serial, framework);
      table.add_row({label, std::to_string(nodes * 8),
                     TablePrinter::fmt(timing.serial_seconds * 1e3, 1),
                     TablePrinter::fmt(timing.pto_seconds * 1e3, 1),
                     TablePrinter::fmt(timing.speedup(), 2) + "x"});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper (128 GPUs): ResNet-50 11 -> 7 ms; Transformer "
               "30 -> 14 ms (~2x).\n";

  // Functional check on real tensors: partitioned LARS rates == serial.
  const models::ModelSpec spec = models::resnet50();
  Rng rng(4);
  std::vector<Tensor> weights, grads;
  for (const auto& layer : spec.layers) {
    Tensor w(layer.size()), g(layer.size());
    w.fill_normal(rng, 0.0f, 0.1f);
    g.fill_normal(rng, 0.0f, 0.01f);
    weights.push_back(std::move(w));
    grads.push_back(std::move(g));
  }
  pto::LarsConfig config;
  auto rate_of = [&](size_t l) {
    return pto::lars_rate(config, weights[l].l2_norm(), grads[l].l2_norm());
  };
  const pto::PtoPlan plan{128, spec.num_tensors()};
  const auto partitioned = pto::pto_compute(plan, rate_of);
  size_t mismatches = 0;
  for (size_t l = 0; l < spec.num_tensors(); ++l) {
    if (partitioned[l] != rate_of(l)) ++mismatches;
  }
  std::cout << "\nFunctional check: 161 layer-wise LARS rates computed via "
               "the 128-way PTO partition\nmatch the serial computation with "
            << mismatches << " mismatches (expected 0).\n";
  return 0;
}
