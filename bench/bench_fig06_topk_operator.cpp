// Fig. 6: top-k operator time — nn.topk (exact) vs DGC (double sampling) vs
// MSTopK — on (a) small tensors 0.25-8 M elements and (b) large tensors
// 16-128 M elements, k = 0.001 * d.
//
// Two series per operator:
//   sim  — the calibrated V100 device model (the paper's hardware;
//          nn.topk(128 M) ~ 1.2 s, MSTopK negligible);
//   cpu  — real wall-clock of this repository's functional CPU
//          implementations (structure check: exact > DGC > MSTopK does not
//          hold on CPUs, where nth_element is cache-friendly; the GPU
//          argument is about memory-access regularity, which the device
//          model captures).
#include <chrono>
#include <iostream>

#include "compress/dgc_topk.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/tensor.h"
#include "simgpu/gpu_model.h"

namespace {

double cpu_seconds(hitopk::compress::Compressor& compressor,
                   const hitopk::Tensor& x, size_t k, int repeats) {
  using clock = std::chrono::steady_clock;
  compressor.compress(x.span(), k);  // warm-up
  const auto begin = clock::now();
  for (int r = 0; r < repeats; ++r) compressor.compress(x.span(), k);
  const auto end = clock::now();
  return std::chrono::duration<double>(end - begin).count() / repeats;
}

}  // namespace

int main() {
  using hitopk::TablePrinter;
  std::cout << "=== Fig. 6: top-k operator time (k = 0.001 * d, N = 30 "
               "samplings) ===\n\n";
  const hitopk::simgpu::GpuCostModel gpu;

  TablePrinter table({"Panel", "Elements", "nn.topk sim", "DGC sim",
                      "MSTopK sim", "nn.topk cpu", "DGC cpu",
                      "MSTopK hist cpu", "MSTopK legacy cpu"});
  const size_t small[] = {256u << 10, 1u << 20, 2u << 20, 4u << 20, 8u << 20};
  const size_t large[] = {16u << 20, 32u << 20, 64u << 20, 128u << 20};
  hitopk::Rng rng(2024);

  auto run_panel = [&](const char* panel, std::span<const size_t> sizes,
                       bool measure_cpu) {
    for (size_t d : sizes) {
      const size_t k = d / 1000;
      std::string cpu_exact = "-", cpu_dgc = "-", cpu_hist = "-",
                  cpu_legacy = "-";
      if (measure_cpu) {
        hitopk::Tensor x(d);
        x.fill_normal(rng, 0.0f, 1.0f);
        hitopk::compress::ExactTopK exact;
        hitopk::compress::DgcTopK dgc(0.01, 7);
        hitopk::compress::MsTopK hist(30, 7);
        hitopk::compress::MsTopK legacy(
            30, 7, hitopk::compress::MsTopKMode::kMultiPass);
        const int repeats = d > (16u << 20) ? 1 : 3;
        cpu_exact = TablePrinter::fmt(cpu_seconds(exact, x, k, repeats), 4);
        cpu_dgc = TablePrinter::fmt(cpu_seconds(dgc, x, k, repeats), 4);
        cpu_hist = TablePrinter::fmt(cpu_seconds(hist, x, k, repeats), 4);
        cpu_legacy = TablePrinter::fmt(cpu_seconds(legacy, x, k, repeats), 4);
      }
      table.add_row({panel, std::to_string(d >> 20) + "M",
                     TablePrinter::fmt(gpu.exact_topk_seconds(d), 4),
                     TablePrinter::fmt(gpu.dgc_topk_seconds(d), 4),
                     TablePrinter::fmt(gpu.mstopk_seconds(d, k, 30), 4),
                     cpu_exact, cpu_dgc, cpu_hist, cpu_legacy});
    }
  };
  run_panel("(a) small", small, /*measure_cpu=*/true);
  run_panel("(b) large", large, /*measure_cpu=*/true);
  table.print(std::cout);
  std::cout << "\nPaper anchors: nn.topk(128M) ~1.2 s; DGC clearly better "
               "but 'not fast enough'; MSTopK negligible (<0.03 s).\n"
               "'hist' is the two-read magnitude-bit bracket search (default "
               "operator, exact-top-k\npass structure); 'legacy' the "
               "paper-literal N-pass binary search (validation reference).\n";
  return 0;
}
