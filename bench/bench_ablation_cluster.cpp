// Ablation: how aggregation schemes scale with cluster shape (m nodes x n
// GPUs) — the design-space question behind HiTopKComm's hierarchy.
// Also covers Table 1's cloud presets (AWS/Aliyun/Tencent NICs).
#include <iostream>

#include "collectives/hier_allreduce.h"
#include "collectives/hitopkcomm.h"
#include "collectives/naive_allgather.h"
#include "collectives/param_server.h"
#include "collectives/torus2d.h"
#include "collectives/tree_allreduce.h"
#include "core/table.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::coll;
  using hitopk::simnet::Cluster;
  using hitopk::simnet::Topology;

  const size_t elems = 25u << 20;
  const size_t fp16 = 2;
  const double density = 0.01;

  auto measure = [&](const Topology& topo) {
    Cluster c_naive(topo);
    const double naive =
        naive_sparse_allgather_time(
            c_naive, static_cast<size_t>(density * static_cast<double>(elems)),
            fp16, 0.0, 0.0)
            .total;
    Cluster c_tree(topo);
    TreeOptions tree_options;
    tree_options.wire = WireDtype::kFp16;
    const double tree =
        tree_allreduce(c_tree, world_group(topo), {}, elems, tree_options, 0.0);
    Cluster c_torus(topo);
    const double torus = torus2d_allreduce(c_torus, {}, elems, WireDtype::kFp16, 0.0).total;
    Cluster c_hier(topo);
    const double hier = hier_allreduce(c_hier, {}, elems, WireDtype::kFp16, 0.0).total;
    Cluster c_ps(topo);
    const double ps = param_server_allreduce(c_ps, {}, elems, WireDtype::kFp16, 0.0).total;
    Cluster c_hitopk(topo);
    HiTopKOptions options;
    options.density = density;
    options.value_wire = WireDtype::kFp16;
    const double hitopk = hitopk_comm(c_hitopk, {}, elems, options, 0.0).total;
    return std::array<double, 6>{naive, tree, torus, hier, ps, hitopk};
  };

  std::cout << "=== Ablation: cluster shape (25M elements, FP16, rho=0.01) "
               "===\n\n";
  TablePrinter shape_table({"Shape (m x n)", "NaiveAG", "TreeAR", "2DTAR",
                            "HierAR", "ParamServer", "HiTopKComm"});
  for (const auto [m, n] : {std::pair{4, 8}, std::pair{8, 8}, std::pair{16, 8},
                            std::pair{32, 8}, std::pair{16, 4},
                            std::pair{16, 16}, std::pair{128, 1}}) {
    const auto t = measure(Topology::tencent_cloud(m, n));
    shape_table.add_row({std::to_string(m) + " x " + std::to_string(n),
                         TablePrinter::fmt(t[0], 4), TablePrinter::fmt(t[1], 4),
                         TablePrinter::fmt(t[2], 4), TablePrinter::fmt(t[3], 4),
                         TablePrinter::fmt(t[4], 4),
                         TablePrinter::fmt(t[5], 4)});
  }
  shape_table.print(std::cout);

  std::cout << "\n=== Cloud presets (Table 1), 16 x 8 ===\n\n";
  TablePrinter cloud_table({"Cloud", "NaiveAG", "TreeAR", "2DTAR", "HierAR",
                            "ParamServer", "HiTopKComm"});
  for (const auto& [name, topo] :
       {std::pair{"Tencent 25GbE", Topology::tencent_cloud(16, 8)},
        std::pair{"AWS 25GbE", Topology::aws_p3(16, 8)},
        std::pair{"Aliyun 32GbE", Topology::aliyun(16, 8)},
        std::pair{"100Gb InfiniBand", Topology::infiniband_100g(16, 8)}}) {
    const auto t = measure(topo);
    cloud_table.add_row({name, TablePrinter::fmt(t[0], 4),
                         TablePrinter::fmt(t[1], 4), TablePrinter::fmt(t[2], 4),
                         TablePrinter::fmt(t[3], 4), TablePrinter::fmt(t[4], 4),
                         TablePrinter::fmt(t[5], 4)});
  }
  cloud_table.print(std::cout);
  std::cout << "\nExpected: HiTopKComm's advantage widens with node count "
               "and shrinks on fast interconnects\n(on 100GbIB the dense "
               "hierarchical schemes close most of the gap).\n";
  return 0;
}
