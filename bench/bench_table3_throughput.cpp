// Table 3: system throughput (samples/s) and scaling efficiency of
// Dense-SGD, 2DTAR-SGD, and MSTopK-SGD on the 128-GPU Tencent Cloud
// cluster, for ResNet-50 (224^2 and 96^2), VGG-19, and Transformer.
//
// Paper values for comparison:
//   ResNet-50 (224)  :  64000 / 134656 / 133376    43.5 / 91.4 / 90.6 %
//   ResNet-50 (96)   : 113280 / 313600 / 396800    20.1 / 56.7 / 70.5 %
//   VGG-19           :  17920 /  47616 /  57600    25   / 66.4 / 80.4 %
//   Transformer      :    678 /   2534 /   3502    16.5 / 61.6 / 87.8 %
#include <iostream>

#include "core/table.h"
#include "train/timeline.h"

namespace {

using hitopk::TablePrinter;
using hitopk::simnet::Topology;
using hitopk::train::Algorithm;
using hitopk::train::TrainerOptions;
using hitopk::train::TrainingSimulator;

struct Workload {
  const char* label;
  const char* model;
  int resolution;
  int local_batch;
  double paper_throughput[3];  // Dense, 2DTAR, MSTopK
};

constexpr Workload kWorkloads[] = {
    {"ResNet-50 (224*224)", "resnet50", 224, 256, {64000, 134656, 133376}},
    {"ResNet-50 (96*96)", "resnet50", 96, 256, {113280, 313600, 396800}},
    {"VGG-19", "vgg19", 224, 128, {17920, 47616, 57600}},
    {"Transformer", "transformer", 0, 16, {678, 2534, 3502}},
};

constexpr Algorithm kAlgorithms[] = {
    Algorithm::kDenseTree, Algorithm::kDense2dTorus, Algorithm::kMstopkHitopk};

}  // namespace

int main() {
  std::cout << "=== Table 3: 128-GPU system throughput and scaling "
               "efficiency ===\n";
  const Topology topo = Topology::tencent_cloud(16, 8);
  std::cout << "cluster: " << topo.describe() << "\n\n";

  TablePrinter table({"Model", "Algorithm", "Throughput (samples/s)",
                      "Paper", "Scaling Eff.", "Paper SE"});
  const double paper_se[4][3] = {{43.5, 91.4, 90.6},
                                 {20.1, 56.7, 70.5},
                                 {25.0, 66.4, 80.4},
                                 {16.5, 61.6, 87.8}};
  int row = 0;
  for (const auto& workload : kWorkloads) {
    int column = 0;
    for (Algorithm algorithm : kAlgorithms) {
      TrainerOptions options;
      options.model = workload.model;
      options.resolution = workload.resolution > 0 ? workload.resolution : 224;
      options.local_batch = workload.local_batch;
      options.algorithm = algorithm;
      TrainingSimulator sim(topo, options);
      const auto iteration = sim.simulate_iteration();
      const double se = sim.scaling_efficiency();
      table.add_row({workload.label, hitopk::train::algorithm_name(algorithm),
                     TablePrinter::fmt(iteration.throughput, 0),
                     TablePrinter::fmt(workload.paper_throughput[column], 0),
                     TablePrinter::fmt_percent(se),
                     TablePrinter::fmt(paper_se[row][column], 1) + "%"});
      ++column;
    }
    ++row;
  }
  table.print(std::cout);
  std::cout << "\nShape check: MSTopK-SGD should lead except ResNet-50@224,\n"
               "where long compute overlaps communication and 2DTAR-SGD ties "
               "(§5.5.2).\n";
  return 0;
}
