// Ablation: how the gradient density rho moves the communication-time /
// selection-mass trade-off (§5.3 uses rho = 0.01; training uses 0.001).
//
// Left: HiTopKComm aggregation time vs rho (25 M params, the Fig. 8 grid
// extended).  Right: convergence quality after a fixed budget vs rho on the
// vision proxy (MSTopK-SGD, 16 workers).
#include <iostream>

#include "collectives/hitopkcomm.h"
#include "core/table.h"
#include "simgpu/gpu_model.h"
#include "train/convergence.h"
#include "train/synthetic.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk;

  std::cout << "=== Ablation: density sweep ===\n\n";
  const simnet::Topology topo = simnet::Topology::tencent_cloud(16, 8);
  const simgpu::GpuCostModel gpu;

  std::cout << "--- HiTopKComm time vs density (25M params, FP16) ---\n";
  TablePrinter comm_table({"Density", "Comm time (s)", "Inter-AG share",
                           "Bytes vs dense"});
  for (const double density :
       {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    simnet::Cluster cluster(topo);
    coll::HiTopKOptions options;
    options.density = density;
    options.value_wire = coll::WireDtype::kFp16;
    options.gpu = &gpu;
    const auto b = coll::hitopk_comm(cluster, {}, 25'000'000, options, 0.0);
    const double dense_bytes = 25'000'000.0 * 2;
    const double sparse_bytes = density * 25'000'000.0 * (2 + 4) *
                                topo.nodes() * topo.nodes() /
                                topo.world_size();
    comm_table.add_row({TablePrinter::fmt(density, 4),
                        TablePrinter::fmt(b.total, 4),
                        TablePrinter::fmt_percent(b.inter_allgather / b.total),
                        TablePrinter::fmt_percent(sparse_bytes / dense_bytes)});
  }
  comm_table.print(std::cout);

  std::cout << "\n--- convergence vs density (MSTopK-SGD, 18 epochs, vision "
               "proxy) ---\n";
  TablePrinter quality_table({"Density", "Final top-5", "Comm (sim s)"});
  for (const double density : {0.002, 0.01, 0.05, 0.2}) {
    auto task = train::make_vision_task(555);
    train::ConvergenceOptions options;
    options.algorithm = train::ConvergenceAlgorithm::kMstopk;
    options.epochs = 18;
    options.density = density;
    const auto result = train::run_convergence(*task, options);
    quality_table.add_row({TablePrinter::fmt(density, 3),
                           TablePrinter::fmt_percent(result.final_quality),
                           TablePrinter::fmt(result.simulated_comm_seconds, 3)});
  }
  quality_table.print(std::cout);
  std::cout << "\nExpected: communication grows ~linearly with density while "
               "quality saturates,\njustifying the paper's small rho.\n";
  return 0;
}
