// Table 4: system throughput per input resolution along the DAWNBench
// schedule (128 GPUs), with the per-phase algorithm choice of §5.6.
//
//   Paper:  epochs  input    BS   single-GPU   128-GPU (SE)
//           13      96x96    256  4400         366,208 (65%)
//           11      128x128  256  3010         269,696 (70%)
//           3       224x224  256  1240         131,712 (83%)
//           1       288x288  128  710           72,960 (80%)
#include <iostream>

#include "core/table.h"
#include "train/dawnbench.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Table 4: throughput per DAWNBench phase (16x8 cluster) "
               "===\n\n";
  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);
  const auto report =
      simulate_dawnbench(topo, DawnbenchSchedule::paper_recipe());

  const double paper_single[] = {4400, 3010, 1240, 710};
  const double paper_cluster[] = {366208, 269696, 131712, 72960};
  const double paper_se[] = {65, 70, 83, 80};

  TablePrinter table({"# Epochs", "Input", "BS", "Algorithm", "Single-GPU",
                      "Paper", "128-GPU", "Paper.", "SE", "Paper SE"});
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const auto& p = report.phases[i];
    table.add_row(
        {std::to_string(p.phase.epochs),
         std::to_string(p.phase.resolution) + "x" +
             std::to_string(p.phase.resolution),
         std::to_string(p.phase.local_batch),
         algorithm_name(p.phase.algorithm),
         TablePrinter::fmt(p.single_gpu_throughput, 0),
         TablePrinter::fmt(paper_single[i], 0),
         TablePrinter::fmt(p.cluster_throughput, 0),
         TablePrinter::fmt(paper_cluster[i], 0),
         TablePrinter::fmt_percent(p.scaling_efficiency),
         TablePrinter::fmt(paper_se[i], 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nNote: our SE divides by our own simulated single-GPU "
               "iteration (compute+LARS+update),\nwhile the paper's "
               "single-GPU column is a pure-compute anchor.\n";
  return 0;
}
