// google-benchmark microbenchmarks of the real (CPU) compression operators
// and of HiTopKComm's functional path — wall-clock complements the device
// model used by the figure benches.
//
// The MSTopK rows compare the two bracket-search implementations directly:
// BM_MsTopK runs the single-pass histogram (default) and BM_MsTopKLegacy the
// paper-literal multi-pass binary search; main() first prints a selection-
// quality validation of the histogram variant (exactly k selected, magnitude
// -mass overlap vs exact top-k) so the speedup numbers are read alongside
// proof that the fast path still selects the right elements.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "collectives/hitopkcomm.h"
#include "compress/dgc_topk.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "compress/other_compressors.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace {

using namespace hitopk;

Tensor gaussian(size_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor t(d);
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

void BM_ExactTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::exact_topk(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_ExactTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_DgcTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 2);
  compress::DgcTopK dgc(0.01, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgc.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_DgcTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 3);
  compress::MsTopK mstopk(30, 5);  // histogram mode (default)
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_MsTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopKLegacy(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 3);
  compress::MsTopK mstopk(30, 5, compress::MsTopKMode::kMultiPass);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_MsTopKLegacy)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopKSamplings(benchmark::State& state) {
  // Sampling-count ablation: only the legacy multi-pass search reads N.
  const size_t d = 1 << 20;
  const Tensor x = gaussian(d, 4);
  compress::MsTopK mstopk(static_cast<int>(state.range(0)), 7,
                          compress::MsTopKMode::kMultiPass);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
}
BENCHMARK(BM_MsTopKSamplings)->Arg(5)->Arg(15)->Arg(30)->Arg(60);

void BM_RandomK(benchmark::State& state) {
  const size_t d = 1 << 20;
  const Tensor x = gaussian(d, 5);
  compress::RandomK random_k(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_k.compress(x.span(), d / 1000));
  }
}
BENCHMARK(BM_RandomK);

void BM_HiTopKCommFunctional(benchmark::State& state) {
  // Functional hierarchical aggregation over a 2x4 cluster, d = 64k.
  const simnet::Topology topo(2, 4, simnet::LinkParams{1e-6, 1e-9},
                              simnet::LinkParams{1e-5, 1e-8});
  const size_t d = 1 << 16;
  std::vector<Tensor> grads;
  Rng rng(11);
  for (int r = 0; r < 8; ++r) {
    Tensor t(d);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Tensor> copy = grads;
    coll::RankData spans;
    for (auto& g : copy) spans.push_back(g.span());
    simnet::Cluster cluster(topo);
    coll::HiTopKOptions options;
    options.density = 0.01;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        coll::hitopk_comm(cluster, spans, d, options, 0.0));
  }
}
BENCHMARK(BM_HiTopKCommFunctional);

// Selection-quality + speedup validation at the acceptance point (d = 1M,
// density 0.001): the histogram variant must select exactly k elements,
// capture >= 99% of exact top-k magnitude mass, and beat the legacy
// multi-pass search.  The deterministic criteria (count, mass) and a
// conservative speedup floor are enforced — returns false so the binary
// exits non-zero instead of "validating" silently.
bool validate_histogram_mstopk() {
  using clock = std::chrono::steady_clock;
  const size_t d = 1 << 20;
  const size_t k = static_cast<size_t>(0.001 * static_cast<double>(d));
  const Tensor x = gaussian(d, 99);

  compress::MsTopK hist(30, 13);
  compress::MsTopK legacy(30, 13, compress::MsTopKMode::kMultiPass);

  const compress::SparseTensor selection = hist.compress(x.span(), k);
  const compress::SparseTensor exact = compress::exact_topk(x.span(), k);
  double selected_mass = 0.0, exact_mass = 0.0;
  for (float v : selection.values) selected_mass += std::fabs(v);
  for (float v : exact.values) exact_mass += std::fabs(v);

  auto seconds = [&](compress::MsTopK& op) {
    op.compress(x.span(), k);  // warm-up
    const auto begin = clock::now();
    for (int r = 0; r < 5; ++r) op.compress(x.span(), k);
    return std::chrono::duration<double>(clock::now() - begin).count() / 5;
  };
  const double hist_s = seconds(hist);
  const double legacy_s = seconds(legacy);

  std::printf(
      "MSTopK validation (d=%zu, k=%zu): selected %zu elements, "
      "%.2f%% of exact top-k magnitude mass\n",
      d, k, selection.nnz(), 100.0 * selected_mass / exact_mass);
  std::printf(
      "MSTopK compress: histogram %.4fs vs legacy multi-pass %.4fs "
      "(%.1fx speedup)\n\n",
      hist_s, legacy_s, legacy_s / hist_s);

  bool ok = true;
  if (selection.nnz() != k) {
    std::fprintf(stderr, "FAIL: histogram MSTopK selected %zu != k=%zu\n",
                 selection.nnz(), k);
    ok = false;
  }
  if (selected_mass < 0.99 * exact_mass) {
    std::fprintf(stderr, "FAIL: magnitude-mass overlap below 99%%\n");
    ok = false;
  }
  // Wall-clock floor kept below the 2x target so a loaded CI machine does
  // not flake; a histogram slower than ~1.2x legacy means the fast path
  // regressed outright.
  if (hist_s * 1.2 >= legacy_s) {
    std::fprintf(stderr,
                 "FAIL: histogram not meaningfully faster than legacy "
                 "(%.4fs vs %.4fs)\n",
                 hist_s, legacy_s);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (!validate_histogram_mstopk()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
