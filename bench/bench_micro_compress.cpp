// google-benchmark microbenchmarks of the real (CPU) compression operators
// and of HiTopKComm's functional path — wall-clock complements the device
// model used by the figure benches.
//
// The MSTopK rows compare the two bracket-search implementations directly:
// BM_MsTopK runs the single-pass histogram (default) and BM_MsTopKLegacy the
// paper-literal multi-pass binary search; main() first prints a selection-
// quality validation of the histogram variant (exactly k selected, magnitude
// -mass overlap vs exact top-k) so the speedup numbers are read alongside
// proof that the fast path still selects the right elements.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "collectives/hitopkcomm.h"
#include "compress/dgc_topk.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "compress/other_compressors.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace {

using namespace hitopk;

Tensor gaussian(size_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor t(d);
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

void BM_ExactTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::exact_topk(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_ExactTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_ExactTopKLegacy(benchmark::State& state) {
  // The packed-key nth_element reference (TopKSelect::kNthElement) —
  // bit-identical output, kept as the timing baseline for the histogram.
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::exact_topk(
        x.span(), d / 1000, compress::TopKSelect::kNthElement));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_ExactTopKLegacy)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_DgcTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 2);
  compress::DgcTopK dgc(0.01, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgc.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_DgcTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 3);
  compress::MsTopK mstopk(30, 5);  // histogram mode (default)
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_MsTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopKLegacy(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 3);
  compress::MsTopK mstopk(30, 5, compress::MsTopKMode::kMultiPass);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_MsTopKLegacy)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopKSamplings(benchmark::State& state) {
  // Sampling-count ablation: only the legacy multi-pass search reads N.
  const size_t d = 1 << 20;
  const Tensor x = gaussian(d, 4);
  compress::MsTopK mstopk(static_cast<int>(state.range(0)), 7,
                          compress::MsTopKMode::kMultiPass);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
}
BENCHMARK(BM_MsTopKSamplings)->Arg(5)->Arg(15)->Arg(30)->Arg(60);

void BM_RandomK(benchmark::State& state) {
  const size_t d = 1 << 20;
  const Tensor x = gaussian(d, 5);
  compress::RandomK random_k(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_k.compress(x.span(), d / 1000));
  }
}
BENCHMARK(BM_RandomK);

void BM_HiTopKCommFunctional(benchmark::State& state) {
  // Functional hierarchical aggregation over a 2x4 cluster, d = 64k.
  const simnet::Topology topo(2, 4, simnet::LinkParams{1e-6, 1e-9},
                              simnet::LinkParams{1e-5, 1e-8});
  const size_t d = 1 << 16;
  std::vector<Tensor> grads;
  Rng rng(11);
  for (int r = 0; r < 8; ++r) {
    Tensor t(d);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Tensor> copy = grads;
    coll::RankData spans;
    for (auto& g : copy) spans.push_back(g.span());
    simnet::Cluster cluster(topo);
    coll::HiTopKOptions options;
    options.density = 0.01;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        coll::hitopk_comm(cluster, spans, d, options, 0.0));
  }
}
BENCHMARK(BM_HiTopKCommFunctional);

// Selection-quality + speedup validation at the acceptance point (d = 1M,
// density 0.001), emitted to stdout and BENCH_compress.json (schema in
// docs/REPRODUCING.md) so the perf trajectory is tracked across PRs:
//   - MSTopK histogram vs legacy multi-pass: exactly k selected, >= 99% of
//     exact top-k magnitude mass, and meaningfully faster.
//   - exact top-k histogram vs nth_element reference: bit-identical indices
//     AND values (the threshold_select contract), and meaningfully faster.
// The deterministic criteria and a conservative speedup floor are enforced
// — returns false so the binary exits non-zero instead of "validating"
// silently.
bool validate_and_report() {
  using clock = std::chrono::steady_clock;
  const size_t d = 1 << 20;
  const size_t k = static_cast<size_t>(0.001 * static_cast<double>(d));
  const Tensor x = gaussian(d, 99);

  compress::MsTopK hist(30, 13);
  compress::MsTopK legacy(30, 13, compress::MsTopKMode::kMultiPass);

  const compress::SparseTensor selection = hist.compress(x.span(), k);
  const compress::SparseTensor exact = compress::exact_topk(x.span(), k);
  double selected_mass = 0.0, exact_mass = 0.0;
  for (float v : selection.values) selected_mass += std::fabs(v);
  for (float v : exact.values) exact_mass += std::fabs(v);

  auto mstopk_seconds = [&](compress::MsTopK& op) {
    op.compress(x.span(), k);  // warm-up
    const auto begin = clock::now();
    for (int r = 0; r < 5; ++r) op.compress(x.span(), k);
    return std::chrono::duration<double>(clock::now() - begin).count() / 5;
  };
  const double hist_s = mstopk_seconds(hist);
  const double legacy_s = mstopk_seconds(legacy);

  auto topk_seconds = [&](compress::TopKSelect algo) {
    compress::exact_topk(x.span(), k, algo);  // warm-up
    const auto begin = clock::now();
    for (int r = 0; r < 5; ++r) compress::exact_topk(x.span(), k, algo);
    return std::chrono::duration<double>(clock::now() - begin).count() / 5;
  };
  const double topk_hist_s = topk_seconds(compress::TopKSelect::kHistogram);
  const double topk_nth_s = topk_seconds(compress::TopKSelect::kNthElement);
  const compress::SparseTensor topk_ref =
      compress::exact_topk(x.span(), k, compress::TopKSelect::kNthElement);
  const bool topk_identical =
      exact.indices == topk_ref.indices && exact.values == topk_ref.values;

  std::printf(
      "MSTopK validation (d=%zu, k=%zu): selected %zu elements, "
      "%.2f%% of exact top-k magnitude mass\n",
      d, k, selection.nnz(), 100.0 * selected_mass / exact_mass);
  std::printf(
      "MSTopK compress: histogram %.4fs vs legacy multi-pass %.4fs "
      "(%.1fx speedup)\n",
      hist_s, legacy_s, legacy_s / hist_s);
  std::printf(
      "exact top-k: histogram %.4fs vs nth_element %.4fs (%.1fx speedup), "
      "outputs %s\n\n",
      topk_hist_s, topk_nth_s, topk_nth_s / topk_hist_s,
      topk_identical ? "bit-identical" : "DIFFER");

  std::FILE* json = std::fopen("BENCH_compress.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"micro_compress\",\n  \"d\": %zu,\n"
                 "  \"k\": %zu,\n"
                 "  \"mstopk\": {\"hist_seconds\": %.6f, \"legacy_seconds\": "
                 "%.6f, \"speedup\": %.2f, \"mass_overlap\": %.6f},\n"
                 "  \"exact_topk\": {\"hist_seconds\": %.6f, "
                 "\"nth_seconds\": %.6f, \"speedup\": %.2f, "
                 "\"bit_identical\": %s}\n}\n",
                 d, k, hist_s, legacy_s, legacy_s / hist_s,
                 selected_mass / exact_mass, topk_hist_s, topk_nth_s,
                 topk_nth_s / topk_hist_s, topk_identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_compress.json\n\n");
  }

  bool ok = true;
  if (selection.nnz() != k) {
    std::fprintf(stderr, "FAIL: histogram MSTopK selected %zu != k=%zu\n",
                 selection.nnz(), k);
    ok = false;
  }
  if (selected_mass < 0.99 * exact_mass) {
    std::fprintf(stderr, "FAIL: magnitude-mass overlap below 99%%\n");
    ok = false;
  }
  if (!topk_identical) {
    std::fprintf(stderr,
                 "FAIL: histogram exact top-k not bit-identical to the "
                 "nth_element reference\n");
    ok = false;
  }
  // Wall-clock floors kept below the observed speedups so a loaded CI
  // machine does not flake; a fast path slower than ~1.2x its reference
  // means it regressed outright.
  if (hist_s * 1.2 >= legacy_s) {
    std::fprintf(stderr,
                 "FAIL: histogram not meaningfully faster than legacy "
                 "(%.4fs vs %.4fs)\n",
                 hist_s, legacy_s);
    ok = false;
  }
  if (topk_hist_s * 1.2 >= topk_nth_s) {
    std::fprintf(stderr,
                 "FAIL: histogram exact top-k not meaningfully faster than "
                 "nth_element (%.4fs vs %.4fs)\n",
                 topk_hist_s, topk_nth_s);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (!validate_and_report()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
