// google-benchmark microbenchmarks of the real (CPU) compression operators
// and of HiTopKComm's functional path — wall-clock complements the device
// model used by the figure benches.
#include <benchmark/benchmark.h>

#include "collectives/hitopkcomm.h"
#include "compress/dgc_topk.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "compress/other_compressors.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace {

using namespace hitopk;

Tensor gaussian(size_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor t(d);
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

void BM_ExactTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::exact_topk(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_ExactTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_DgcTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 2);
  compress::DgcTopK dgc(0.01, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dgc.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_DgcTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopK(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Tensor x = gaussian(d, 3);
  compress::MsTopK mstopk(30, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_MsTopK)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_MsTopKSamplings(benchmark::State& state) {
  const size_t d = 1 << 20;
  const Tensor x = gaussian(d, 4);
  compress::MsTopK mstopk(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mstopk.compress(x.span(), d / 1000));
  }
}
BENCHMARK(BM_MsTopKSamplings)->Arg(5)->Arg(15)->Arg(30)->Arg(60);

void BM_RandomK(benchmark::State& state) {
  const size_t d = 1 << 20;
  const Tensor x = gaussian(d, 5);
  compress::RandomK random_k(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_k.compress(x.span(), d / 1000));
  }
}
BENCHMARK(BM_RandomK);

void BM_HiTopKCommFunctional(benchmark::State& state) {
  // Functional hierarchical aggregation over a 2x4 cluster, d = 64k.
  const simnet::Topology topo(2, 4, simnet::LinkParams{1e-6, 1e-9},
                              simnet::LinkParams{1e-5, 1e-8});
  const size_t d = 1 << 16;
  std::vector<Tensor> grads;
  Rng rng(11);
  for (int r = 0; r < 8; ++r) {
    Tensor t(d);
    t.fill_normal(rng, 0.0f, 1.0f);
    grads.push_back(std::move(t));
  }
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Tensor> copy = grads;
    coll::RankData spans;
    for (auto& g : copy) spans.push_back(g.span());
    simnet::Cluster cluster(topo);
    coll::HiTopKOptions options;
    options.density = 0.01;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        coll::hitopk_comm(cluster, spans, d, options, 0.0));
  }
}
BENCHMARK(BM_HiTopKCommFunctional);

}  // namespace

BENCHMARK_MAIN();
