// Ablation: tensor-fusion bucket size vs exposed communication — the
// wait-free-backpropagation design knob (§2.2's "tensor fusion" citation).
// Small buckets start communicating earlier but pay per-collective
// latency; huge buckets serialize communication after backprop.
#include <iostream>

#include "core/table.h"
#include "train/timeline.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Ablation: tensor fusion threshold (ResNet-50 @224^2, "
               "16x8 cluster) ===\n\n";
  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);

  TablePrinter table({"Fusion (MB)", "Algorithm", "Exposed comm (s)",
                      "Iter (s)", "Throughput"});
  for (const Algorithm algorithm :
       {Algorithm::kDenseTree, Algorithm::kDense2dTorus}) {
    for (const size_t fusion_mb : {2, 8, 32, 64, 256, 1024}) {
      TrainerOptions options;
      options.algorithm = algorithm;
      options.fusion_bytes = fusion_mb << 20;
      TrainingSimulator sim(topo, options);
      const auto it = sim.simulate_iteration();
      table.add_row({std::to_string(fusion_mb), algorithm_name(algorithm),
                     TablePrinter::fmt(it.communication, 4),
                     TablePrinter::fmt(it.total, 4),
                     TablePrinter::fmt(it.throughput, 0)});
    }
  }
  table.print(std::cout);

  std::cout << "\nNo-overlap reference (overlap_comm = false):\n";
  for (const Algorithm algorithm :
       {Algorithm::kDenseTree, Algorithm::kDense2dTorus}) {
    TrainerOptions options;
    options.algorithm = algorithm;
    options.overlap_comm = false;
    TrainingSimulator sim(topo, options);
    const auto it = sim.simulate_iteration();
    std::cout << "  " << algorithm_name(algorithm) << ": exposed comm "
              << TablePrinter::fmt(it.communication, 4) << " s, iter "
              << TablePrinter::fmt(it.total, 4) << " s\n";
  }
  std::cout << "\nExpected: a wide flat optimum around tens of MB — exactly "
               "where Horovod's default sits.\n";
  return 0;
}
