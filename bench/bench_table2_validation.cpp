// Table 2: final validation performance of the three training algorithms.
//
//   Paper:  model        2DTAR(dense)  TopK-SGD  MSTopK-SGD
//           ResNet-50    93.31%        92.68%    93.12%   (top-5)
//           VGG-19       92.19%        91.55%    91.94%   (top-5)
//           Transformer  26.74         24.42     24.16    (BLEU)
//
// Substitution: synthetic stand-in tasks (DESIGN.md); the sequence task
// reports token accuracy in place of BLEU.  The claim under reproduction is
// the *ordering and gap*: sparse variants land within ~1-2 points of dense.
#include <iostream>

#include "core/table.h"
#include "train/convergence.h"
#include "train/synthetic.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  std::cout << "=== Table 2: validation performance (synthetic stand-ins, "
               "16 workers, rho=0.01) ===\n\n";
  struct Row {
    const char* label;
    bool sequence;
    std::vector<size_t> hidden;
    const char* paper;  // dense / topk / mstopk reference
  };
  const Row rows[] = {
      {"ResNet-50 proxy", false, {96, 64}, "93.31 / 92.68 / 93.12 (top-5 %)"},
      {"VGG-19 proxy", false, {128}, "92.19 / 91.55 / 91.94 (top-5 %)"},
      {"Transformer proxy", true, {}, "26.74 / 24.42 / 24.16 (BLEU)"},
  };

  TablePrinter table({"Model", "Metric", "Dense-SGD", "TopK-SGD",
                      "MSTopK-SGD", "Paper (dense/topk/mstopk)"});
  for (const auto& row : rows) {
    std::vector<double> finals;
    std::string metric;
    for (const auto algorithm :
         {ConvergenceAlgorithm::kDense, ConvergenceAlgorithm::kTopk,
          ConvergenceAlgorithm::kMstopk}) {
      auto task = row.sequence
                      ? make_sequence_task(777)
                      : make_vision_task(777, "proxy", row.hidden);
      metric = task->quality_metric();
      ConvergenceOptions options;
      options.algorithm = algorithm;
      options.epochs = row.sequence ? 20 : 25;
      options.density = 0.01;
      options.seed = 31;
      finals.push_back(run_convergence(*task, options).final_quality);
    }
    table.add_row({row.label, metric, TablePrinter::fmt_percent(finals[0]),
                   TablePrinter::fmt_percent(finals[1]),
                   TablePrinter::fmt_percent(finals[2]), row.paper});
  }
  table.print(std::cout);
  std::cout << "\nReproduced claim: sparse variants converge within a couple "
               "of points of dense;\nthe exact ordering between TopK and "
               "MSTopK is within noise, as in the paper\n(MSTopK wins on "
               "CNNs, loses slightly on Transformer).\n";
  return 0;
}
