// hitopk-sim: command-line front-end to the training-system simulator.
//
//   example_simulate_cli --model resnet50 --resolution 224 --batch 256
//       --nodes 16 --gpus 8 --algorithm mstopk --density 0.001
//       [--cloud tencent|aliyun|infiniband] [--straggler-cv 0.1]
//       [--no-datacache] [--no-pto] [--no-overlap] [--trace trace.json]
//
// Prints the per-phase iteration breakdown, throughput, and scaling
// efficiency; optionally writes a Chrome-tracing JSON of one iteration's
// aggregation traffic.
#include <fstream>
#include <iostream>

#include "collectives/hitopkcomm.h"
#include "collectives/torus2d.h"
#include "core/flags.h"
#include "core/table.h"
#include "models/model_zoo.h"
#include "train/timeline.h"

namespace {

using namespace hitopk;

simnet::Topology topology_from_flags(const Flags& flags) {
  const int nodes = flags.get_int("nodes", 16);
  const int gpus = flags.get_int("gpus", 8);
  const std::string cloud = flags.get("cloud", "tencent");
  if (cloud == "aliyun") return simnet::Topology::aliyun(nodes, gpus);
  if (cloud == "infiniband") {
    return simnet::Topology::infiniband_100g(nodes, gpus);
  }
  HITOPK_CHECK(cloud == "tencent" || cloud == "aws")
      << "unknown --cloud:" << cloud;
  return simnet::Topology::tencent_cloud(nodes, gpus);
}

train::Algorithm algorithm_from_flags(const Flags& flags) {
  const std::string name = flags.get("algorithm", "mstopk");
  if (name == "dense") return train::Algorithm::kDenseTree;
  if (name == "2dtar") return train::Algorithm::kDense2dTorus;
  if (name == "topk") return train::Algorithm::kTopkNaiveAg;
  HITOPK_CHECK(name == "mstopk") << "unknown --algorithm:" << name;
  return train::Algorithm::kMstopkHitopk;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout << "flags: --model --resolution --batch --nodes --gpus "
                 "--algorithm {dense,2dtar,topk,mstopk} --density --cloud "
                 "{tencent,aws,aliyun,infiniband} --straggler-cv "
                 "--no-datacache --no-pto --no-overlap --trace FILE\n";
    return 0;
  }

  const simnet::Topology topo = topology_from_flags(flags);
  train::TrainerOptions options;
  options.model = flags.get("model", "resnet50");
  options.resolution = flags.get_int("resolution", 224);
  options.local_batch = flags.get_int("batch", 256);
  options.algorithm = algorithm_from_flags(flags);
  options.density = flags.get_double("density", 0.001);
  options.straggler_cv = flags.get_double("straggler-cv", 0.0);
  options.use_datacache = !flags.get_bool("no-datacache");
  options.use_pto = !flags.get_bool("no-pto");
  options.overlap_comm = !flags.get_bool("no-overlap");

  train::TrainingSimulator sim(topo, options);
  const auto it = sim.simulate_iteration();

  std::cout << "cluster   : " << topo.describe() << "\n";
  std::cout << "workload  : " << options.model << " @" << options.resolution
            << "^2, batch " << options.local_batch << "/GPU, "
            << train::algorithm_name(options.algorithm) << "\n\n";
  TablePrinter table({"Phase", "Exposed seconds"});
  table.add_row({"I/O", TablePrinter::fmt(it.io, 4)});
  table.add_row({"FF&BP", TablePrinter::fmt(it.ffbp, 4)});
  table.add_row({"Compression", TablePrinter::fmt(it.compression, 4)});
  table.add_row({"Communication", TablePrinter::fmt(it.communication, 4)});
  table.add_row({"LARS + update", TablePrinter::fmt(it.lars, 4)});
  table.add_row({"Framework", TablePrinter::fmt(it.overhead, 4)});
  table.add_row({"Total", TablePrinter::fmt(it.total, 4)});
  table.print(std::cout);
  std::cout << "\nthroughput: " << TablePrinter::fmt(it.throughput, 0)
            << " samples/s   scaling efficiency: "
            << TablePrinter::fmt_percent(sim.scaling_efficiency()) << "\n";

  if (flags.has("trace")) {
    // Trace one aggregation of the model's full gradient.
    simnet::Cluster cluster(topo);
    cluster.enable_tracing();
    const size_t params =
        models::model_by_name(options.model).total_params();
    if (options.algorithm == train::Algorithm::kMstopkHitopk) {
      coll::HiTopKOptions hi;
      hi.density = options.density;
      hi.value_wire = coll::WireDtype::kFp16;
      coll::hitopk_comm(cluster, {}, params, hi, 0.0);
    } else {
      coll::torus2d_allreduce(cluster, {}, params, coll::WireDtype::kFp16, 0.0);
    }
    std::ofstream out(flags.get("trace"));
    cluster.write_chrome_trace(out, train::algorithm_name(options.algorithm));
    std::cout << "wrote " << cluster.trace().size() << " transfer events to "
              << flags.get("trace") << " (open in chrome://tracing)\n";
  }
  return 0;
}
