// End-to-end scenario: plan a 90-epoch ImageNet ResNet-50 run on a public
// cloud cluster, comparing the four SGD algorithms on iteration breakdown,
// throughput, and projected wall-clock — the workload the paper's
// introduction motivates.
#include <iostream>

#include "core/table.h"
#include "data/dataset.h"
#include "train/timeline.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);
  const auto dataset = hitopk::data::DatasetSpec::imagenet();
  const int epochs = 90;

  std::cout << "Planning a " << epochs << "-epoch ImageNet ResNet-50 run on "
            << topo.describe() << "\n\n";

  TablePrinter table({"Algorithm", "Iter (s)", "Exposed comm (s)",
                      "Throughput", "Scaling eff.", "90-epoch wall-clock"});
  for (const Algorithm algorithm :
       {Algorithm::kDenseTree, Algorithm::kDense2dTorus,
        Algorithm::kTopkNaiveAg, Algorithm::kMstopkHitopk}) {
    TrainerOptions options;
    options.model = "resnet50";
    options.resolution = 224;
    options.local_batch = 256;
    options.algorithm = algorithm;
    TrainingSimulator sim(topo, options);
    const auto it = sim.simulate_iteration();
    const double iters = static_cast<double>(dataset.num_samples) /
                         (256.0 * topo.world_size());
    const double wall = iters * it.total * epochs;
    table.add_row({algorithm_name(algorithm), TablePrinter::fmt(it.total, 3),
                   TablePrinter::fmt(it.communication + it.compression, 3),
                   TablePrinter::fmt(it.throughput, 0),
                   TablePrinter::fmt_percent(sim.scaling_efficiency()),
                   TablePrinter::fmt(wall / 60.0, 1) + " min"});
  }
  table.print(std::cout);

  std::cout << "\nWhat if the cluster were smaller?  MSTopK-SGD iteration "
               "time by node count:\n";
  for (const int nodes : {2, 4, 8, 16}) {
    TrainerOptions options;
    options.algorithm = Algorithm::kMstopkHitopk;
    TrainingSimulator sim(hitopk::simnet::Topology::tencent_cloud(nodes, 8),
                          options);
    const auto it = sim.simulate_iteration();
    std::cout << "  " << nodes << " nodes (" << nodes * 8
              << " GPUs): " << TablePrinter::fmt(it.total, 3) << " s/iter, "
              << TablePrinter::fmt(it.throughput, 0) << " samples/s\n";
  }
  return 0;
}
