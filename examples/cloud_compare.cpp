// Scenario: choosing a cloud for distributed training (Table 1).  Compares
// iteration time and scaling efficiency of the training algorithms across
// the instance presets and over a custom user-defined fabric.
#include <iostream>

#include "core/table.h"
#include "train/timeline.h"

int main() {
  using hitopk::TablePrinter;
  using hitopk::simnet::LinkParams;
  using hitopk::simnet::Topology;
  using namespace hitopk::train;

  std::cout << "=== Cloud comparison: ResNet-50 @224^2, batch 256/GPU, "
               "16 nodes x 8 GPUs ===\n\n";

  TablePrinter table({"Cloud", "Algorithm", "Iter (s)", "Throughput",
                      "Scaling eff."});
  for (const auto& [name, topo] :
       {std::pair{"Tencent 25GbE", Topology::tencent_cloud(16, 8)},
        std::pair{"AWS p3 25GbE", Topology::aws_p3(16, 8)},
        std::pair{"Aliyun 32GbE", Topology::aliyun(16, 8)},
        std::pair{"100Gb InfiniBand", Topology::infiniband_100g(16, 8)}}) {
    for (const Algorithm algorithm :
         {Algorithm::kDenseTree, Algorithm::kMstopkHitopk}) {
      TrainerOptions options;
      options.algorithm = algorithm;
      TrainingSimulator sim(topo, options);
      const auto it = sim.simulate_iteration();
      table.add_row({name, algorithm_name(algorithm),
                     TablePrinter::fmt(it.total, 3),
                     TablePrinter::fmt(it.throughput, 0),
                     TablePrinter::fmt_percent(sim.scaling_efficiency())});
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: MSTopK-SGD removes most of the interconnect "
               "sensitivity — sparse\naggregation makes 25GbE behave almost "
               "like InfiniBand for this workload.\n\n";

  // Custom fabric: a hypothetical 50 GbE cloud with slower NVLink.
  const Topology custom(16, 8, LinkParams{8e-6, 1.0 / 25e9},
                        LinkParams{30e-6, 1.0 / 1.2e9},
                        /*nic_beta=*/1.0 / (50.0 / 8.0 * 1e9 * 0.55));
  TrainerOptions options;
  options.algorithm = Algorithm::kMstopkHitopk;
  TrainingSimulator sim(custom, options);
  const auto it = sim.simulate_iteration();
  std::cout << "Custom fabric (" << custom.describe() << "):\n  MSTopK-SGD "
            << TablePrinter::fmt(it.throughput, 0) << " samples/s\n";
  return 0;
}
