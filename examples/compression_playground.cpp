// Scenario: pick a gradient compressor.  Profiles every compression method
// in the library on the same synthetic gradient stream — selection quality,
// wire size, device-model cost — and demonstrates the error-feedback loop
// that makes aggressive compression safe.
#include <cmath>
#include <iostream>

#include "compress/dgc_topk.h"
#include "compress/error_feedback.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "compress/other_compressors.h"
#include "compress/quantizers.h"
#include "core/rng.h"
#include "core/table.h"
#include "core/tensor.h"
#include "simgpu/gpu_model.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk;

  const size_t d = 1 << 22;  // 4M-element gradient
  const size_t k = d / 1000;
  Rng rng(7);
  Tensor gradient(d);
  gradient.fill_normal(rng, 0.0f, 1.0f);
  // Heavy tail: a few large coordinates, like real late-training gradients.
  for (int i = 0; i < 200; ++i) {
    gradient[rng.uniform_index(d)] = static_cast<float>(rng.normal(0.0, 25.0));
  }

  const auto exact = compress::exact_topk(gradient.span(), k);
  double exact_mass = 0.0;
  for (float v : exact.values) exact_mass += std::fabs(v);

  const simgpu::GpuCostModel gpu;
  std::cout << "=== Sparsifiers on a 4M-element heavy-tailed gradient "
               "(k = 0.1%) ===\n\n";
  TablePrinter table({"Method", "Mass vs exact top-k", "Wire bytes",
                      "V100 time (ms)"});
  auto add_sparse = [&](const char* name, compress::Compressor& compressor,
                        double device_ms) {
    const auto sparse = compressor.compress(gradient.span(), k);
    double mass = 0.0;
    for (float v : sparse.values) mass += std::fabs(v);
    table.add_row({name, TablePrinter::fmt_percent(mass / exact_mass),
                   std::to_string(sparse.payload_bytes(2)),
                   TablePrinter::fmt(device_ms, 2)});
  };
  compress::ExactTopK exact_compressor;
  compress::DgcTopK dgc(0.01, 3);
  compress::MsTopK mstopk(30, 3);
  compress::RandomK random_k(3);
  add_sparse("exact top-k (nn.topk)", exact_compressor,
             gpu.exact_topk_seconds(d) * 1e3);
  add_sparse("DGC double sampling", dgc, gpu.dgc_topk_seconds(d) * 1e3);
  add_sparse("MSTopK (Alg. 1)", mstopk, gpu.mstopk_seconds(d, k, 30) * 1e3);
  add_sparse("random-k", random_k, 0.01);
  table.print(std::cout);

  std::cout << "\n=== Dense quantizers (whole-tensor) ===\n\n";
  TablePrinter quant({"Method", "Wire bytes", "vs FP32", "RMS error"});
  auto rms = [&](const Tensor& q) {
    double acc = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double e = q[i] - gradient[i];
      acc += e * e;
    }
    return std::sqrt(acc / d);
  };
  {
    compress::Qsgd qsgd(15, 5);
    Tensor q = gradient;
    const size_t bytes = qsgd.quantize(q.span());
    quant.add_row({"QSGD (15 levels)", std::to_string(bytes),
                   TablePrinter::fmt_percent(static_cast<double>(bytes) /
                                             (d * 4.0)),
                   TablePrinter::fmt(rms(q), 4)});
  }
  {
    Tensor q = gradient;
    const size_t bytes = compress::SignCompressor::compress(q.span());
    quant.add_row({"EF-SignSGD (1 bit)", std::to_string(bytes),
                   TablePrinter::fmt_percent(static_cast<double>(bytes) /
                                             (d * 4.0)),
                   TablePrinter::fmt(rms(q), 4)});
  }
  quant.print(std::cout);

  // Error-feedback demo: MSTopK at 0.1% density still delivers all the
  // gradient mass over time.
  std::cout << "\n=== Error feedback: nothing is lost, only delayed ===\n";
  compress::ErrorFeedback ef;
  Tensor delivered(1 << 12);
  Tensor produced(1 << 12);
  compress::MsTopK loop_compressor(30, 9);
  for (int step = 0; step < 200; ++step) {
    Tensor g(1 << 12);
    g.fill_normal(rng, 0.0f, 1.0f);
    produced += g;
    ef.apply("grad", g.span());
    const auto sent = loop_compressor.compress(g.span(), 4);
    ef.absorb("grad", g.span(), sent);
    sent.scatter_add_into(delivered.span());
  }
  Tensor residual(1 << 12);
  ef.apply("grad", residual.span());
  delivered += residual;
  double max_error = 0.0;
  for (size_t i = 0; i < delivered.size(); ++i) {
    max_error = std::max(max_error,
                         static_cast<double>(std::fabs(delivered[i] -
                                                       produced[i])));
  }
  std::cout << "after 200 steps at density 0.1%: max |delivered + residual - "
               "produced| = "
            << max_error << " (exact closure)\n";
  return 0;
}
