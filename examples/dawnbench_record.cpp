// Scenario: the DAWNBench record attempt (§5.6) — run the paper's 28-epoch
// multi-resolution recipe and explore variations: switching the small-input
// phase between MSTopK-SGD and dense, and stretching/shrinking the phases.
#include <iostream>

#include "core/table.h"
#include "train/dawnbench.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);

  std::cout << "=== DAWNBench record attempt: 28 epochs to 93% top-5 ===\n\n";
  const auto paper = simulate_dawnbench(topo, DawnbenchSchedule::paper_recipe());
  TablePrinter table({"Phase", "Epochs", "Algorithm", "128-GPU throughput",
                      "Phase time"});
  for (const auto& p : paper.phases) {
    table.add_row({std::to_string(p.phase.resolution) + "^2",
                   std::to_string(p.phase.epochs),
                   algorithm_name(p.phase.algorithm),
                   TablePrinter::fmt(p.cluster_throughput, 0),
                   TablePrinter::fmt(p.seconds, 1) + " s"});
  }
  table.print(std::cout);
  std::cout << "Total: " << TablePrinter::fmt(paper.total_seconds, 1)
            << " s (paper record: 151 s; previous best: Alibaba 158 s on "
               "32GbE)\n\n";

  std::cout << "--- recipe variations ---\n";
  struct Variant {
    const char* label;
    DawnbenchSchedule schedule;
  };
  std::vector<Variant> variants;
  {
    auto s = DawnbenchSchedule::paper_recipe();
    s.phases[0].algorithm = Algorithm::kDense2dTorus;
    variants.push_back({"dense everywhere (no MSTopK phase)", s});
  }
  {
    auto s = DawnbenchSchedule::paper_recipe();
    s.phases[0].algorithm = Algorithm::kDenseTree;
    variants.push_back({"stock Horovod at 96^2", s});
  }
  {
    auto s = DawnbenchSchedule::paper_recipe();
    s.phases[1].algorithm = Algorithm::kMstopkHitopk;
    variants.push_back({"MSTopK also at 128^2 (paper avoided: accuracy risk)",
                        s});
  }
  {
    auto s = DawnbenchSchedule::paper_recipe();
    s.phases[0].epochs = 18;
    s.phases[1].epochs = 6;
    variants.push_back({"longer 96^2 warmup (18+6 epochs)", s});
  }
  for (const auto& v : variants) {
    const auto report = simulate_dawnbench(topo, v.schedule);
    std::cout << "  " << v.label << ": "
              << TablePrinter::fmt(report.total_seconds, 1) << " s ("
              << TablePrinter::fmt(report.total_seconds - paper.total_seconds,
                                   1)
              << " s vs paper recipe)\n";
  }
  return 0;
}
