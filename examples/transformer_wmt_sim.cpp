// Scenario: WMT-style Transformer training on the cloud cluster — the
// paper's NLP workload.  Shows (a) the throughput story for the 110M-param
// model and (b) a real (small-scale) convergence run of the sequence task
// through the sparse collectives.
#include <iostream>

#include "core/table.h"
#include "models/model_zoo.h"
#include "train/convergence.h"
#include "train/synthetic.h"
#include "train/timeline.h"

int main() {
  using hitopk::TablePrinter;
  using namespace hitopk::train;

  const auto model = hitopk::models::transformer_wmt();
  std::cout << "Transformer: " << model.total_params() / 1'000'000
            << "M parameters in " << model.num_tensors() << " tensors\n\n";

  const auto topo = hitopk::simnet::Topology::tencent_cloud(16, 8);
  TablePrinter table({"Algorithm", "Iter (s)", "Throughput (sent/s)",
                      "Scaling eff."});
  for (const Algorithm algorithm :
       {Algorithm::kDenseTree, Algorithm::kDense2dTorus,
        Algorithm::kMstopkHitopk}) {
    TrainerOptions options;
    options.model = "transformer";
    options.local_batch = 16;
    options.algorithm = algorithm;
    TrainingSimulator sim(topo, options);
    const auto it = sim.simulate_iteration();
    table.add_row({algorithm_name(algorithm), TablePrinter::fmt(it.total, 3),
                   TablePrinter::fmt(it.throughput, 0),
                   TablePrinter::fmt_percent(sim.scaling_efficiency())});
  }
  table.print(std::cout);

  std::cout << "\nSmall-scale convergence check (sequence-classification "
               "proxy, 16 workers):\n";
  for (const auto algorithm :
       {ConvergenceAlgorithm::kDense, ConvergenceAlgorithm::kMstopk}) {
    auto task = make_sequence_task(2718);
    ConvergenceOptions options;
    options.algorithm = algorithm;
    options.epochs = 12;
    options.density = 0.02;
    const auto result = run_convergence(*task, options);
    std::cout << "  " << convergence_algorithm_name(algorithm)
              << ": token accuracy "
              << TablePrinter::fmt_percent(result.final_quality)
              << " after 12 epochs (simulated comm "
              << TablePrinter::fmt(result.simulated_comm_seconds, 2) << " s)\n";
  }
  return 0;
}
