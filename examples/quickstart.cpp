// Quickstart: compress a gradient with MSTopK and aggregate it across a
// simulated cloud cluster with HiTopKComm.
//
//   build/examples/example_quickstart
//
// Walks the library's three core pieces in ~80 lines:
//   1. MSTopK (Alg. 1) vs exact top-k on one gradient,
//   2. functional HiTopKComm (Alg. 2) across 2 nodes x 4 GPUs,
//   3. the same aggregation timed on the paper's 16x8 25 GbE cluster.
#include <cmath>
#include <iostream>

#include "collectives/hitopkcomm.h"
#include "compress/exact_topk.h"
#include "compress/mstopk.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "simnet/cluster.h"

int main() {
  using namespace hitopk;

  // --- 1. MSTopK vs exact top-k ------------------------------------------
  const size_t d = 1 << 20;  // 1M-element gradient
  const size_t k = d / 1000; // rho = 0.001
  Rng rng(42);
  Tensor gradient(d);
  gradient.fill_normal(rng, 0.0f, 1.0f);

  compress::MsTopK mstopk(/*n_samplings=*/30, /*seed=*/1);
  const auto approx = mstopk.compress(gradient.span(), k);
  const auto exact = compress::exact_topk(gradient.span(), k);

  double approx_mass = 0.0, exact_mass = 0.0;
  for (float v : approx.values) approx_mass += std::fabs(v);
  for (float v : exact.values) exact_mass += std::fabs(v);
  std::cout << "MSTopK selected " << approx.nnz() << " of " << d
            << " elements, capturing "
            << 100.0 * approx_mass / exact_mass
            << "% of the exact top-k magnitude mass\n";

  // --- 2. functional HiTopKComm on a small cluster -----------------------
  const simnet::Topology small = simnet::Topology::tencent_cloud(2, 4);
  simnet::Cluster cluster(small);
  std::vector<Tensor> worker_grads;
  Tensor dense_sum(1 << 12);
  for (int r = 0; r < small.world_size(); ++r) {
    Tensor g(1 << 12);
    g.fill_normal(rng, 0.0f, 1.0f);
    dense_sum += g;
    worker_grads.push_back(std::move(g));
  }
  coll::RankData spans;
  for (auto& g : worker_grads) spans.push_back(g.span());
  coll::HiTopKOptions options;
  options.density = 0.05;
  const auto result = coll::hitopk_comm(cluster, spans, 1 << 12, options, 0.0);

  size_t nnz = 0;
  double captured = 0.0, total = 0.0;
  for (size_t i = 0; i < dense_sum.size(); ++i) {
    total += std::fabs(dense_sum[i]);
    if (worker_grads[0][i] != 0.0f) {
      ++nnz;
      captured += std::fabs(dense_sum[i]);
    }
  }
  std::cout << "HiTopKComm aggregated 8 workers' gradients: " << nnz
            << " nonzeros (density " << options.density << "), capturing "
            << 100.0 * captured / total << "% of the dense-sum mass\n";

  // --- 3. timing on the paper's cluster ----------------------------------
  simnet::Cluster big(simnet::Topology::tencent_cloud(16, 8));
  coll::HiTopKOptions paper;
  paper.density = 0.01;
  paper.value_wire = coll::WireDtype::kFp16;
  const auto timing = coll::hitopk_comm(big, {}, 25'000'000, paper, 0.0);
  std::cout << "On 16 nodes x 8 V100s over 25GbE, aggregating a 25M-param "
               "gradient takes "
            << timing.total * 1e3 << " ms (inter-node All-Gather: "
            << timing.inter_allgather * 1e3 << " ms)\n";
  return 0;
}
